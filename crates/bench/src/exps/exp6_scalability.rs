//! Exp 6 / Fig 11 — scalability: throughput (MTEPS) on the mesh
//! ("delaunay-like") graph family as the vertex count doubles.

use std::sync::Arc;

use nxgraph_baselines::graphchi::{GraphChiConfig, GraphChiEngine};
use nxgraph_baselines::turbograph::{self, TurboGraphConfig};
use nxgraph_bench::report::Table;
use nxgraph_bench::workloads::prepare_mem;
use nxgraph_core::algo::{self, pagerank::PageRank};
use nxgraph_core::engine::SyncMode;
use nxgraph_graphgen::datasets;

use crate::exps::nx_cfg;
use crate::Opts;

/// Run Fig 11. Scales follow the paper's n20…n24 shifted by the options
/// (default: n12…n16 at `--scale-shift -6` ≈ -8 from the paper).
pub fn run(opts: &Opts) -> bool {
    let base_scale = (14 + opts.scale_shift).clamp(8, 22) as u32;
    let mut t = Table::new(
        "Fig 11 — scalability in MTEPS (10-iter PageRank on mesh graphs)",
        &[
            "vertices (×2^20 in paper; here 2^scale)",
            "nxgraph-callback",
            "nxgraph-lock",
            "graphchi-like",
            "turbograph-like",
        ],
    );
    for scale in base_scale..base_scale + 5 {
        let d = datasets::delaunay_like(scale);
        let g = prepare_mem(&d, 12, false);
        let cfg = nx_cfg(opts);
        let (_, cb) = algo::pagerank(&g, opts.iters, &cfg).expect("cb");
        let (_, lk) =
            algo::pagerank(&g, opts.iters, &cfg.clone().with_sync(SyncMode::Lock)).expect("lk");
        let prog = PageRank::new(g.num_vertices(), Arc::clone(g.out_degrees()));
        let gc = GraphChiEngine::prepare(&g).expect("gc prep");
        let (_, gcs) = gc
            .run(
                &prog,
                &GraphChiConfig {
                    threads: opts.threads,
                    max_iterations: opts.iters,
                },
            )
            .expect("gc run");
        let (_, tgs) = turbograph::run(
            &g,
            &prog,
            &TurboGraphConfig {
                threads: opts.threads,
                max_iterations: opts.iters,
                ..Default::default()
            },
        )
        .expect("tg run");
        t.row(vec![
            format!("2^{scale}"),
            format!("{:.1}", cb.mteps()),
            format!("{:.1}", lk.mteps()),
            format!("{:.1}", gcs.mteps()),
            format!("{:.1}", tgs.mteps()),
        ]);
    }
    t.print();
    println!("(paper: NXgraph throughput grows with graph size; TurboGraph-like tends to decrease)");
    true
}
