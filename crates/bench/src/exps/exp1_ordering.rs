//! Exp 1 / Table IV — sub-shard ordering and parallelism model.
//!
//! "dst-sorted, fine-grained" is NXgraph's SPU engine; "src-sorted,
//! coarse-grained" is the GraphChi-style kernel (source-sorted edges,
//! per-thread accumulator merge) run over the same in-memory data so the
//! difference is purely the kernel, as in the paper's Table IV.

use nxgraph_baselines::graphchi::{GraphChiConfig, GraphChiEngine};
use nxgraph_bench::report::{fmt_secs, Table};
use nxgraph_bench::workloads::prepare_mem;
use nxgraph_core::algo;

use crate::exps::{nx_cfg, real_world};
use crate::Opts;

/// Run Table IV: 10 iterations of PageRank per model per graph.
pub fn run(opts: &Opts) -> bool {
    let mut t = Table::new(
        "Table IV — performance with different sub-shard models (10-iter PageRank)",
        &["model", "livejournal", "twitter", "yahoo"],
    );
    let mut dst_row = vec!["dst-sorted, fine-grained".to_string()];
    let mut src_row = vec!["src-sorted, coarse-grained".to_string()];
    let mut speedups = Vec::new();
    for d in real_world(opts) {
        let g = prepare_mem(&d, 12, false);

        let (_, stats) = algo::pagerank(&g, opts.iters, &nx_cfg(opts)).expect("nxgraph run");
        dst_row.push(fmt_secs(stats.elapsed));

        let engine = GraphChiEngine::prepare(&g).expect("graphchi prep");
        let prog = nxgraph_core::algo::pagerank::PageRank::new(
            g.num_vertices(),
            std::sync::Arc::clone(g.out_degrees()),
        );
        let cfg = GraphChiConfig {
            threads: opts.threads,
            max_iterations: opts.iters,
        };
        let (_, gc_stats) = engine.run(&prog, &cfg).expect("graphchi run");
        src_row.push(fmt_secs(gc_stats.elapsed));
        speedups.push(gc_stats.elapsed.as_secs_f64() / stats.elapsed.as_secs_f64().max(1e-9));
    }
    t.row(src_row);
    t.row(dst_row);
    t.print();
    println!(
        "(paper: dst-sorted wins everywhere, up to 3.5x; observed speedups {:?})",
        speedups.iter().map(|s| format!("{s:.2}x")).collect::<Vec<_>>()
    );
    true
}
