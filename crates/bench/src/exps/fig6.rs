//! Fig 6 — ratio of total I/O, MPU vs TurboGraph-like, as the memory
//! budget sweeps 0 → 2nBa (Yahoo-web parameters).

use nxgraph_bench::report::Table;
use nxgraph_core::iomodel::{mpu_vs_turbograph_ratio, IoParams};

use crate::Opts;

/// Print the Fig 6 curve as (budget GB, ratio) rows.
pub fn run(_opts: &Opts) -> bool {
    let p = IoParams::yahoo_web();
    let threshold = p.spu_threshold();
    let mut t = Table::new(
        "Fig 6 — MPU / TurboGraph-like total I/O ratio (Yahoo-web)",
        &["budget (GB)", "ratio"],
    );
    let steps = 24;
    let mut min_ratio = f64::INFINITY;
    for k in 1..=steps {
        let budget = threshold * k as f64 / steps as f64;
        let r = mpu_vs_turbograph_ratio(&p, budget);
        min_ratio = min_ratio.min(r);
        t.row(vec![
            format!("{:.2}", budget / 1e9),
            format!("{r:.4}"),
        ]);
    }
    t.print();
    println!(
        "(paper: ratio < 1 everywhere — 'MPU always outperforms TurboGraph-like'; observed minimum {min_ratio:.4})"
    );
    min_ratio < 1.0
}
