//! Exp 7 / Fig 12 — BFS, SCC and WCC across systems on the three graphs.
//!
//! Notes mirroring the paper's own caveats: TurboGraph ships no SCC (and
//! its BFS crashed in the paper's runs); here the TurboGraph-like engine
//! runs BFS/WCC but SCC is NXgraph-only. WCC requires undirected
//! semantics: NXgraph runs `Direction::Both` over forward+reverse
//! sub-shards; the forward-only baselines run on an explicitly symmetrised
//! copy of the graph (identical component structure).


use nxgraph_baselines::graphchi::{GraphChiConfig, GraphChiEngine};
use nxgraph_baselines::turbograph::{self, TurboGraphConfig};
use nxgraph_bench::report::{fmt_secs, Table};
use nxgraph_bench::workloads::prepare_mem;
use nxgraph_core::algo::{self, bfs::Bfs, wcc::Wcc};
use nxgraph_core::engine::SyncMode;
use nxgraph_graphgen::datasets::Dataset;

use crate::exps::{nx_cfg, real_world};
use crate::Opts;

fn symmetrised(d: &Dataset) -> Dataset {
    let mut edges = d.edges.clone();
    edges.extend(d.edges.iter().map(|e| nxgraph_graphgen::RawEdge::new(e.dst, e.src)));
    Dataset {
        name: format!("{}-sym", d.name),
        edges,
    }
}

/// Run Fig 12.
pub fn run(opts: &Opts) -> bool {
    for d in real_world(opts) {
        let g = prepare_mem(&d, 12, true);
        let gsym = prepare_mem(&symmetrised(&d), 12, false);
        let cfg = nx_cfg(opts);
        let gc = GraphChiEngine::prepare(&g).expect("gc prep");
        let gc_sym = GraphChiEngine::prepare(&gsym).expect("gc sym prep");

        let mut t = Table::new(
            format!("Fig 12 — more tasks on {} (seconds)", d.name),
            &["task", "nxgraph-callback", "nxgraph-lock", "graphchi-like", "turbograph-like"],
        );

        // BFS.
        let (_, cb) = algo::bfs(&g, 0, &cfg).expect("bfs cb");
        let (_, lk) = algo::bfs(&g, 0, &cfg.clone().with_sync(SyncMode::Lock)).expect("bfs lk");
        let (_, gcs) = gc
            .run(
                &Bfs::new(0),
                &GraphChiConfig {
                    threads: opts.threads,
                    max_iterations: g.num_vertices() as usize + 1,
                },
            )
            .expect("bfs gc");
        let (_, tgs) = turbograph::run(
            &g,
            &Bfs::new(0),
            &TurboGraphConfig {
                threads: opts.threads,
                max_iterations: g.num_vertices() as usize + 1,
                ..Default::default()
            },
        )
        .expect("bfs tg");
        t.row(vec![
            "BFS".into(),
            fmt_secs(cb.elapsed),
            fmt_secs(lk.elapsed),
            fmt_secs(gcs.elapsed),
            fmt_secs(tgs.elapsed),
        ]);

        // SCC (NXgraph only; the paper could not obtain SCC numbers for
        // TurboGraph either).
        let cb = algo::scc(&g, &cfg).expect("scc cb");
        let lk = algo::scc(&g, &cfg.clone().with_sync(SyncMode::Lock)).expect("scc lk");
        t.row(vec![
            "SCC".into(),
            fmt_secs(cb.elapsed),
            fmt_secs(lk.elapsed),
            "n/a".into(),
            "n/a".into(),
        ]);

        // WCC.
        let (_, cb) = algo::wcc(&g, &cfg).expect("wcc cb");
        let (_, lk) = algo::wcc(&g, &cfg.clone().with_sync(SyncMode::Lock)).expect("wcc lk");
        let (_, gcs) = gc_sym
            .run(
                &Wcc,
                &GraphChiConfig {
                    threads: opts.threads,
                    max_iterations: gsym.num_vertices() as usize + 1,
                },
            )
            .expect("wcc gc");
        let (_, tgs) = turbograph::run(
            &gsym,
            &Wcc,
            &TurboGraphConfig {
                threads: opts.threads,
                max_iterations: gsym.num_vertices() as usize + 1,
                ..Default::default()
            },
        )
        .expect("wcc tg");
        t.row(vec![
            "WCC".into(),
            fmt_secs(cb.elapsed),
            fmt_secs(lk.elapsed),
            fmt_secs(gcs.elapsed),
            fmt_secs(tgs.elapsed),
        ]);
        t.print();
    }
    println!("(paper: NXgraph efficient on targeted queries via interval activity; baselines must touch everything)");
    true
}
