//! Exp 3 / Fig 8 — SPU vs DPU across thread counts and memory budgets
//! (PageRank, BFS, SCC on the Twitter-like graph).

use nxgraph_bench::report::{fmt_secs, Table};
use nxgraph_bench::workloads::prepare_mem;
use nxgraph_core::algo;
use nxgraph_core::engine::Strategy;

use crate::exps::{nx_cfg, twitter};
use crate::Opts;

fn task_row(
    g: &nxgraph_core::PreparedGraph,
    cfg: &nxgraph_core::EngineConfig,
    opts: &Opts,
    task: &str,
) -> f64 {
    match task {
        "pagerank" => algo::pagerank(g, opts.iters, cfg).expect("pr").1.elapsed,
        "bfs" => algo::bfs(g, 0, cfg).expect("bfs").1.elapsed,
        "scc" => algo::scc(g, cfg).expect("scc").elapsed,
        _ => unreachable!(),
    }
    .as_secs_f64()
}

/// Run Fig 8: two sweeps × three tasks.
pub fn run(opts: &Opts) -> bool {
    let d = twitter(opts);
    let g = prepare_mem(&d, 12, true);
    let n = g.num_vertices() as u64;

    for task in ["pagerank", "bfs", "scc"] {
        let mut t = Table::new(
            format!("Fig 8 — SPU vs DPU, {task} on Twitter-like (thread sweep)"),
            &["threads", "SPU (s)", "DPU (s)"],
        );
        for threads in [1usize, 2, 4, 6, 8, 12] {
            let base = nx_cfg(opts).with_threads(threads);
            let spu = task_row(&g, &base.clone().with_strategy(Strategy::Spu), opts, task);
            let dpu = task_row(&g, &base.with_strategy(Strategy::Dpu), opts, task);
            t.row(vec![
                threads.to_string(),
                fmt_secs(std::time::Duration::from_secs_f64(spu)),
                fmt_secs(std::time::Duration::from_secs_f64(dpu)),
            ]);
        }
        t.print();
    }

    // Memory sweep: SPU keeps values resident regardless; the budget only
    // moves its shard cache, while DPU ignores the budget entirely. The
    // modeled-SSD column shows the I/O effect explicitly.
    let ssd = nxgraph_storage::DeviceProfile::SSD_RAID0;
    let mut t = Table::new(
        "Fig 8 — SPU vs DPU, PageRank on Twitter-like (memory sweep, modeled SSD time)",
        &["budget frac of 2nBa+shards", "SPU (s)", "DPU (s)"],
    );
    let full = 2 * n * 8 + 4 * n + g.total_subshard_bytes().expect("sizes");
    for frac in [0.25f64, 0.5, 0.75, 1.0] {
        let budget = (full as f64 * frac) as u64;
        let base = nx_cfg(opts).with_budget(budget);
        let (_, spu) = algo::pagerank(&g, opts.iters, &base.clone().with_strategy(Strategy::Spu))
            .expect("spu");
        let (_, dpu) =
            algo::pagerank(&g, opts.iters, &base.with_strategy(Strategy::Dpu)).expect("dpu");
        t.row(vec![
            format!("{frac:.2}"),
            format!("{:.3}", crate::exps::modeled_secs(spu.elapsed, &spu.io, &ssd)),
            format!("{:.3}", crate::exps::modeled_secs(dpu.elapsed, &dpu.io, &ssd)),
        ]);
    }
    t.print();
    println!("(paper: SPU always outperforms DPU in all assessed cases)");
    true
}
