//! Exp 8 / Table V — limited resources: 1-iteration PageRank on the
//! Twitter-like graph, 8 threads, restricted memory, on SSD and HDD
//! device models; NXgraph (MPU) vs GridGraph-like vs X-stream-like.
//!
//! VENUS was never released; the paper compares against its published
//! numbers. EXPERIMENTS.md records the paper-side ratios next to ours.

use std::sync::Arc;

use nxgraph_baselines::gridgraph::{GridGraphConfig, GridGraphEngine};
use nxgraph_baselines::xstream::{XStreamConfig, XStreamEngine};
use nxgraph_bench::report::{fmt_bytes, Table};
use nxgraph_bench::workloads::prepare_mem;
use nxgraph_core::algo::{self, pagerank::PageRank};
use nxgraph_storage::DeviceProfile;

use crate::exps::{half_resident_budget, modeled_secs, nx_cfg, twitter};
use crate::Opts;

/// Run Table V.
pub fn run(opts: &Opts) -> bool {
    let d = twitter(opts);
    let g = prepare_mem(&d, 12, false);
    let n = g.num_vertices() as u64;
    let budget = half_resident_budget(n, 8);
    let threads = opts.threads.min(8);

    let cfg = nx_cfg(opts)
        .with_threads(threads)
        .with_budget(budget)
        .with_max_iterations(1);
    let (_, nx) = algo::pagerank(&g, 1, &cfg).expect("nx run");

    let prog = PageRank::new(g.num_vertices(), Arc::clone(g.out_degrees()));
    let gg = GridGraphEngine::prepare(&g).expect("gg prep");
    let (_, ggs) = gg
        .run(
            &prog,
            &GridGraphConfig {
                threads,
                max_iterations: 1,
            },
        )
        .expect("gg run");
    let xs = XStreamEngine::prepare(&g).expect("xs prep");
    let (_, xss) = xs
        .run(&prog, &XStreamConfig { max_iterations: 1 })
        .expect("xs run");

    for dev in [DeviceProfile::SSD_RAID0, DeviceProfile::HDD] {
        let mut t = Table::new(
            format!(
                "Table V — 1-iter PageRank, Twitter-like, {threads}t, {} budget, {} model",
                fmt_bytes(budget),
                dev.name
            ),
            &[
                "system",
                "wall+io time (s)",
                "io-only speedup vs nxgraph",
                "bytes read",
                "bytes written",
            ],
        );
        let nx_time = modeled_secs(nx.elapsed, &nx.io, &dev);
        // At paper scale the comparison is I/O-bound, so the io-only ratio
        // is the figure of merit; wall time at reduced scale is noise.
        let nx_io = dev.transfer_time(&nx.io).as_secs_f64().max(1e-9);
        for (name, secs, io) in [
            ("nxgraph (MPU)", nx_time, &nx.io),
            ("gridgraph-like", modeled_secs(ggs.elapsed, &ggs.io, &dev), &ggs.io),
            ("xstream-like", modeled_secs(xss.elapsed, &xss.io, &dev), &xss.io),
        ] {
            t.row(vec![
                name.into(),
                format!("{secs:.3}"),
                format!("{:.2}", dev.transfer_time(io).as_secs_f64() / nx_io),
                fmt_bytes(io.read_bytes),
                fmt_bytes(io.written_bytes),
            ]);
        }
        t.print();
    }
    println!("(paper Table V: GridGraph 3.77x, X-stream 12.48x slower than NXgraph on SSD; 1.92x / 6.51x on HDD. VENUS 7.60x on HDD, from its published numbers.)");
    true
}
