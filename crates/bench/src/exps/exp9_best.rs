//! Exp 9 / Table VI — best case: 1-iteration PageRank on the Twitter-like
//! graph with full resources (SPU).
//!
//! PowerGraph is a distributed system and out of scope for
//! re-implementation (DESIGN.md §2); the paper's cited 3.6 s / 1.79×
//! figure is printed alongside for context.

use std::sync::Arc;

use nxgraph_baselines::gridgraph::{GridGraphConfig, GridGraphEngine};
use nxgraph_baselines::graphchi::{GraphChiConfig, GraphChiEngine};
use nxgraph_baselines::turbograph::{self, TurboGraphConfig};
use nxgraph_baselines::xstream::{XStreamConfig, XStreamEngine};
use nxgraph_bench::report::{fmt_bytes, Table};
use nxgraph_bench::workloads::prepare_mem;
use nxgraph_core::algo::{self, pagerank::PageRank};
use nxgraph_storage::DeviceProfile;

use crate::exps::{modeled_secs, nx_cfg, twitter};
use crate::Opts;

/// Run Table VI.
pub fn run(opts: &Opts) -> bool {
    let d = twitter(opts);
    let g = prepare_mem(&d, 12, false);
    let dev = DeviceProfile::SSD_RAID0;
    let threads = opts.threads.min(8);

    let cfg = nx_cfg(opts).with_threads(threads).with_max_iterations(1);
    let (_, nx) = algo::pagerank(&g, 1, &cfg).expect("nx run");
    let nx_time = modeled_secs(nx.elapsed, &nx.io, &dev);

    let prog = PageRank::new(g.num_vertices(), Arc::clone(g.out_degrees()));
    let gc = GraphChiEngine::prepare(&g).expect("gc prep");
    let (_, gcs) = gc
        .run(
            &prog,
            &GraphChiConfig {
                threads,
                max_iterations: 1,
            },
        )
        .expect("gc run");
    let (_, tgs) = turbograph::run(
        &g,
        &prog,
        &TurboGraphConfig {
            threads,
            max_iterations: 1,
            ..Default::default()
        },
    )
    .expect("tg run");
    let gg = GridGraphEngine::prepare(&g).expect("gg prep");
    let (_, ggs) = gg
        .run(
            &prog,
            &GridGraphConfig {
                threads,
                max_iterations: 1,
            },
        )
        .expect("gg run");
    let xs = XStreamEngine::prepare(&g).expect("xs prep");
    let (_, xss) = xs
        .run(&prog, &XStreamConfig { max_iterations: 1 })
        .expect("xs run");

    let mut t = Table::new(
        format!("Table VI — best case: 1-iter PageRank, Twitter-like, {threads}t, SSD model"),
        &[
            "system",
            "wall+io time (s)",
            "io-only speedup vs nxgraph",
            "bytes moved",
        ],
    );
    // SPU with full budget caches everything after the initial load, so
    // NXgraph's steady-state I/O is near zero; the io-only ratio captures
    // the paper's I/O-bound comparison independent of reduced-scale wall
    // noise. NXgraph's own floor is clamped to its initial shard load.
    let nx_io = dev.transfer_time(&nx.io).as_secs_f64().max(1e-9);
    for (name, secs, io) in [
        ("nxgraph (SPU)", nx_time, &nx.io),
        ("graphchi-like", modeled_secs(gcs.elapsed, &gcs.io, &dev), &gcs.io),
        ("turbograph-like", modeled_secs(tgs.elapsed, &tgs.io, &dev), &tgs.io),
        ("gridgraph-like", modeled_secs(ggs.elapsed, &ggs.io, &dev), &ggs.io),
        ("xstream-like", modeled_secs(xss.elapsed, &xss.io, &dev), &xss.io),
    ] {
        t.row(vec![
            name.into(),
            format!("{secs:.3}"),
            format!("{:.2}", dev.transfer_time(io).as_secs_f64() / nx_io),
            fmt_bytes(io.total_bytes()),
        ]);
    }
    t.print();
    println!("(paper Table VI: X-stream 11.57x, GridGraph 11.99x, MMAP 6.52x slower; PowerGraph — a 64-node cluster — 1.79x slower at 3.6 s vs NXgraph's 2.05 s.)");
    true
}
