//! `serve` — the tracked concurrent-serving baseline.
//!
//! A fixed-seed R-MAT fixture is wrapped in a
//! [`GraphService`](nxgraph_core::GraphService) and hit with a mixed
//! read/update stream: reader threads run point queries (BFS, SSSP,
//! PPR-from-seed, top-k PageRank) through admission control while the
//! writer commits known-vertex edge batches and background maintenance
//! folds chains underneath them. Measured: queries/sec, per-query p50/p99
//! latency, admission rejections (busy + budget), and the maximum
//! snapshot lag any query observed (how many commits landed while it ran
//! on its pin). A burst phase fires more arrivals than slots with no
//! retry, so the rejection path is exercised, not just plumbed.
//!
//! Two correctness gates fail the run outright:
//!
//! * zero query errors — every admitted query must complete;
//! * snapshot isolation — a snapshot pinned *before* the stream must
//!   answer bitwise-identically after every commit, fold and an explicit
//!   compaction have superseded its generation, and must match a fresh
//!   preparation of the base edge set.
//!
//! With `--json` the results land in `BENCH_serve.json` (schema v1);
//! CI uploads a tiny-scale run as an artifact.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use nxgraph_bench::report::{fmt_secs, Table};
use nxgraph_core::algo;
use nxgraph_core::dynamic::{DynamicConfig, DynamicGraph};
use nxgraph_core::engine::EngineConfig;
use nxgraph_core::prep::{preprocess, PrepConfig};
use nxgraph_core::serve::{GraphService, Query, ServeConfig, ServeError, Snapshot};
use nxgraph_core::PreparedGraph;
use nxgraph_graphgen::rmat::{self, RmatConfig};
use nxgraph_storage::{Disk, MemDisk};
use rand::{Rng, SeedableRng};

use crate::Opts;

/// Baseline R-MAT log2 scale before `--scale-shift` is applied.
const BASE_SCALE: i32 = 11;

/// Edges per vertex of the fixture.
const EDGE_FACTOR: u32 = 8;

/// Number of intervals of the prepared fixture.
const P: u32 = 8;

/// Reader threads in the mixed phase.
const READERS: usize = 4;

/// Queries issued across all readers in the mixed phase.
const QUERIES: usize = 48;

/// Update batches the writer commits concurrently.
const UPDATE_BATCHES: usize = 8;

/// Edges per update batch.
const BATCH_SIZE: usize = 128;

/// Threads in the burst phase (more arrivals than admission slots).
const BURST_THREADS: usize = 12;

struct Report {
    scale: u32,
    vertices: u32,
    edges_base: u64,
    elapsed_secs: f64,
    queries_per_sec: f64,
    latency_p50_us: f64,
    latency_p99_us: f64,
    admitted: u64,
    rejected_busy: u64,
    rejected_budget: u64,
    errors: u64,
    max_snapshot_lag: u64,
    burst_arrivals: u64,
    burst_rejected: u64,
    snapshot_isolated: bool,
    sweeps_drained: bool,
}

/// Nearest-rank percentile of an unsorted sample, in place.
fn percentile_us(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(f64::total_cmp);
    samples[((samples.len() - 1) as f64 * q).round() as usize]
}

/// PageRank bits of a pinned snapshot (or any prepared graph) under one
/// fixed single-thread configuration — the isolation comparator.
fn fingerprint(g: &PreparedGraph, iters: usize) -> Vec<u64> {
    let cfg = EngineConfig::default().with_threads(1);
    let (ranks, _) = algo::pagerank(g, iters, &cfg).expect("pagerank");
    ranks.into_iter().map(f64::to_bits).collect()
}

/// The deterministic query for stream position `k` on `n` vertices.
fn query_for(k: u64, n: u32, seed: u64) -> Query {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ (k << 1) ^ 0x5e52e);
    let a = rng.random_range(0..n);
    let b = rng.random_range(0..n);
    match k % 4 {
        0 => Query::Bfs { root: a, target: b },
        1 => Query::Sssp { root: a, target: b },
        2 => Query::PprFromSeed {
            seed: a,
            iterations: 5,
            k: 8,
        },
        _ => Query::PageRankTopK {
            iterations: 3,
            k: 8,
        },
    }
}

fn measure(opts: &Opts) -> Report {
    let scale = (BASE_SCALE + opts.scale_shift).max(6) as u32;
    let raw: Vec<(u64, u64)> =
        rmat::generate(&RmatConfig::graph500(scale, EDGE_FACTOR, opts.seed))
            .into_iter()
            .map(|e| (e.src, e.dst))
            .collect();
    let prep_cfg = PrepConfig::new("serve-fixture", P);
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let base = preprocess(&raw, &prep_cfg, Arc::clone(&disk)).expect("prep");
    let vertices = base.num_vertices();
    let edges_base = base.num_edges();
    let known = base.load_reverse_mapping().expect("mapping");

    // Background folds: commits only append and signal; the maintenance
    // thread supersedes generations underneath live snapshots.
    let dg = DynamicGraph::with_config(base, DynamicConfig::background()).expect("dynamic");
    let svc =
        GraphService::new(dg, ServeConfig::default()).expect("delta-log mode is serviceable");

    // Pin BEFORE the stream: this snapshot must answer identically after
    // every commit, fold and compaction supersede its generation.
    let pinned: Snapshot = svc.snapshot().expect("pin epoch 0");
    let bits_before = fingerprint(pinned.graph(), opts.iters.min(5));

    // Mixed phase: READERS query threads + the writer on this thread.
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(QUERIES));
    let retried = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for r in 0..READERS {
            let svc = &svc;
            let latencies = &latencies;
            let retried = &retried;
            scope.spawn(move || {
                let mut k = r as u64;
                while k < QUERIES as u64 {
                    let q = query_for(k, vertices, opts.seed);
                    let qs = Instant::now();
                    match svc.run_query(&q) {
                        Ok(_) => {
                            latencies
                                .lock()
                                .unwrap()
                                .push(qs.elapsed().as_secs_f64() * 1e6);
                            k += READERS as u64;
                        }
                        Err(ServeError::Busy { .. }) | Err(ServeError::OutOfMemory { .. }) => {
                            retried.fetch_add(1, Ordering::Relaxed);
                            std::thread::yield_now();
                        }
                        Err(e) => panic!("query {k} failed: {e}"),
                    }
                }
            });
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(opts.seed ^ 0x57ea3);
        for _ in 0..UPDATE_BATCHES {
            let batch: Vec<(u64, u64)> = (0..BATCH_SIZE)
                .map(|_| {
                    let s = known[rng.random_range(0..known.len())];
                    let d = known[rng.random_range(0..known.len())];
                    (s, d)
                })
                .collect();
            svc.add_edges(&batch).expect("known-vertex commit");
        }
    });
    let elapsed = started.elapsed();
    let mixed = svc.stats();

    // Burst phase: every admission slot is pinned by an operator hold
    // while BURST_THREADS arrivals fire, no retry — all of them must
    // come back as typed Busy rejections, never queue. The hold makes
    // the saturation deterministic instead of racing query runtimes.
    let hold = svc
        .hold_slots(ServeConfig::default().max_concurrent)
        .expect("slots idle between phases");
    std::thread::scope(|scope| {
        for t in 0..BURST_THREADS {
            let svc = &svc;
            scope.spawn(move || {
                let q = query_for(t as u64, vertices, opts.seed ^ 0xb);
                let _ = svc.run_query(&q);
            });
        }
    });
    drop(hold);
    let burst = svc.stats();

    // Supersede the pinned generation completely: quiesce maintenance,
    // fold every chain, sweep. The pin must hold the old files alive.
    svc.with_writer(|dg| {
        dg.wait_maintenance_idle().expect("maintenance idle");
        dg.compact().expect("compact");
    });
    let bits_after = fingerprint(pinned.graph(), opts.iters.min(5));

    // A fresh preparation of the base edges is the ground truth for the
    // epoch the snapshot pinned.
    let fresh_disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let fresh = preprocess(&raw, &prep_cfg, fresh_disk).expect("fresh prep");
    let bits_fresh = fingerprint(&fresh, opts.iters.min(5));
    let snapshot_isolated = bits_before == bits_after && bits_before == bits_fresh;

    // Dropping the last old-generation pin must drain the sweep queue.
    drop(pinned);
    let sweeps_drained = svc.with_writer(|dg| {
        dg.refresh().expect("refresh");
        dg.pending_sweeps() == 0
    });

    let mut lat = latencies.into_inner().unwrap();
    Report {
        scale,
        vertices,
        edges_base,
        elapsed_secs: elapsed.as_secs_f64(),
        queries_per_sec: lat.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        latency_p50_us: percentile_us(&mut lat, 0.50),
        latency_p99_us: percentile_us(&mut lat, 0.99),
        admitted: burst.admitted,
        rejected_busy: burst.rejected_busy,
        rejected_budget: burst.rejected_budget,
        errors: burst.errors,
        max_snapshot_lag: mixed.max_snapshot_lag,
        burst_arrivals: BURST_THREADS as u64,
        burst_rejected: (burst.rejected_busy - mixed.rejected_busy)
            + (burst.rejected_budget - mixed.rejected_budget),
        snapshot_isolated,
        sweeps_drained,
    }
}

fn render_json(opts: &Opts, r: &Report) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"serve\",");
    let _ = writeln!(s, "  \"schema_version\": 1,");
    let _ = writeln!(s, "  \"seed\": {},", opts.seed);
    let _ = writeln!(s, "  \"scale\": {},", r.scale);
    let _ = writeln!(s, "  \"edge_factor\": {EDGE_FACTOR},");
    let _ = writeln!(s, "  \"intervals\": {P},");
    let _ = writeln!(s, "  \"vertices\": {},", r.vertices);
    let _ = writeln!(s, "  \"edges_base\": {},", r.edges_base);
    let _ = writeln!(s, "  \"readers\": {READERS},");
    let _ = writeln!(s, "  \"queries\": {QUERIES},");
    let _ = writeln!(s, "  \"update_batches\": {UPDATE_BATCHES},");
    let _ = writeln!(s, "  \"batch_size\": {BATCH_SIZE},");
    let _ = writeln!(s, "  \"elapsed_secs\": {:.6},", r.elapsed_secs);
    let _ = writeln!(s, "  \"queries_per_sec\": {:.1},", r.queries_per_sec);
    let _ = writeln!(s, "  \"latency_p50_us\": {:.1},", r.latency_p50_us);
    let _ = writeln!(s, "  \"latency_p99_us\": {:.1},", r.latency_p99_us);
    let _ = writeln!(s, "  \"admitted\": {},", r.admitted);
    let _ = writeln!(
        s,
        "  \"rejections\": {{\"busy\": {}, \"budget\": {}}},",
        r.rejected_busy, r.rejected_budget
    );
    let _ = writeln!(s, "  \"errors\": {},", r.errors);
    let _ = writeln!(s, "  \"max_snapshot_lag\": {},", r.max_snapshot_lag);
    let _ = writeln!(
        s,
        "  \"burst\": {{\"arrivals\": {}, \"rejected\": {}}},",
        r.burst_arrivals, r.burst_rejected
    );
    let _ = writeln!(s, "  \"snapshot_isolated\": {},", r.snapshot_isolated);
    let _ = writeln!(s, "  \"sweeps_drained\": {}", r.sweeps_drained);
    let _ = writeln!(s, "}}");
    s
}

/// Run the serving baseline; when `json_out` is set, also write the JSON
/// report there. Returns `false` (failing the harness) on any query
/// error or an isolation/reclamation violation.
pub fn run(opts: &Opts, json_out: Option<&str>) -> bool {
    let r = measure(opts);
    let mut t = Table::new(
        format!(
            "serve — {} queries / {} readers over rmat-{}x{} ({} vertices, {} base edges), {} x {}-edge commits concurrent",
            QUERIES, READERS, r.scale, EDGE_FACTOR, r.vertices, r.edges_base, UPDATE_BATCHES, BATCH_SIZE
        ),
        &[
            "phase", "time", "queries/s", "p50 µs", "p99 µs", "admitted", "busy", "budget",
            "errors", "max lag",
        ],
    );
    t.row(vec![
        "mixed+burst".to_string(),
        fmt_secs(std::time::Duration::from_secs_f64(r.elapsed_secs)),
        format!("{:.1}", r.queries_per_sec),
        format!("{:.1}", r.latency_p50_us),
        format!("{:.1}", r.latency_p99_us),
        r.admitted.to_string(),
        r.rejected_busy.to_string(),
        r.rejected_budget.to_string(),
        r.errors.to_string(),
        r.max_snapshot_lag.to_string(),
    ]);
    t.print();
    println!(
        "burst: {} arrivals with all {} slots held, {} rejected (typed, no queueing)",
        r.burst_arrivals,
        ServeConfig::default().max_concurrent,
        r.burst_rejected
    );
    println!(
        "snapshot pinned across the whole stream + compaction: bitwise isolated {}, sweeps drained after drop {}",
        r.snapshot_isolated, r.sweeps_drained
    );
    if let Some(path) = json_out {
        let json = render_json(opts, &r);
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("serve: failed to write {path}: {e}");
            return false;
        }
        println!("wrote {path}");
    }
    r.errors == 0 && r.snapshot_isolated && r.sweeps_drained
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_json_is_well_formed_and_isolated() {
        let opts = Opts {
            scale_shift: -6,
            iters: 3,
            ..Opts::default()
        };
        let r = measure(&opts);
        assert_eq!(r.errors, 0, "admitted queries failed");
        assert!(r.snapshot_isolated, "pinned snapshot diverged");
        assert!(r.sweeps_drained, "sweep queue left entries after last unpin");
        assert!(r.admitted >= QUERIES as u64);
        assert_eq!(
            r.burst_rejected, BURST_THREADS as u64,
            "with every slot held, all burst arrivals must be rejected"
        );
        assert!(r.queries_per_sec > 0.0);
        assert!(r.latency_p99_us >= r.latency_p50_us);
        let json = render_json(&opts, &r);
        assert!(json.contains("\"bench\": \"serve\""));
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"queries_per_sec\""));
        assert!(json.contains("\"latency_p50_us\""));
        assert!(json.contains("\"latency_p99_us\""));
        assert!(json.contains("\"rejections\": {"));
        assert!(json.contains("\"errors\": 0"));
        assert!(json.contains("\"max_snapshot_lag\""));
        assert!(json.contains("\"snapshot_isolated\": true"));
        assert!(json.contains("\"sweeps_drained\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
        assert_eq!(json.matches('[').count(), json.matches(']').count(), "{json}");
    }
}
