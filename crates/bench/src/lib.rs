//! Benchmark-harness library: workloads, runners and table printing shared
//! by the `nxbench` binary and the Criterion benches.

pub mod report;
pub mod workloads;
