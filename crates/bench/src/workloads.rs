//! Workload construction shared by the harness and the Criterion benches.

use std::sync::Arc;

use nxgraph_core::dsss::PreparedGraph;
use nxgraph_core::prep::{preprocess, PrepConfig};
use nxgraph_graphgen::datasets::Dataset;
use nxgraph_storage::{Disk, EncodingPolicy, MemDisk};

/// Convert generated raw edges into the `(u64, u64)` pairs preprocessing
/// consumes.
pub fn raw_pairs(d: &Dataset) -> Vec<(u64, u64)> {
    d.edges.iter().map(|e| (e.src, e.dst)).collect()
}

fn prep_cfg(d: &Dataset, p: u32, reverse: bool, encoding: EncodingPolicy) -> PrepConfig {
    let cfg = if reverse {
        PrepConfig::new(d.name.clone(), p)
    } else {
        PrepConfig::forward_only(d.name.clone(), p)
    };
    cfg.with_encoding(encoding)
}

/// Preprocess a dataset onto a fresh in-memory disk (all I/O still counted
/// by the disk's counters).
pub fn prepare_mem(d: &Dataset, p: u32, reverse: bool) -> PreparedGraph {
    prepare_mem_enc(d, p, reverse, EncodingPolicy::Raw)
}

/// [`prepare_mem`] with an explicit on-disk blob encoding policy.
pub fn prepare_mem_enc(
    d: &Dataset,
    p: u32,
    reverse: bool,
    encoding: EncodingPolicy,
) -> PreparedGraph {
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    preprocess(&raw_pairs(d), &prep_cfg(d, p, reverse, encoding), disk)
        .expect("preprocessing failed")
}

/// Preprocess onto a real directory-backed disk under `root`.
pub fn prepare_os(d: &Dataset, p: u32, reverse: bool, root: &std::path::Path) -> PreparedGraph {
    prepare_os_enc(d, p, reverse, root, EncodingPolicy::Raw)
}

/// [`prepare_os`] with an explicit on-disk blob encoding policy.
pub fn prepare_os_enc(
    d: &Dataset,
    p: u32,
    reverse: bool,
    root: &std::path::Path,
    encoding: EncodingPolicy,
) -> PreparedGraph {
    let disk: Arc<dyn Disk> =
        Arc::new(nxgraph_storage::OsDisk::new(root.join(&d.name)).expect("mkdir failed"));
    preprocess(&raw_pairs(d), &prep_cfg(d, p, reverse, encoding), disk)
        .expect("preprocessing failed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use nxgraph_graphgen::datasets;

    #[test]
    fn prepare_mem_runs() {
        let d = datasets::livejournal_like(-8, 1);
        let g = prepare_mem(&d, 4, true);
        assert!(g.num_vertices() > 0);
        assert!(g.has_reverse());
    }
}
