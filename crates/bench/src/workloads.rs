//! Workload construction shared by the harness and the Criterion benches.

use std::sync::Arc;

use nxgraph_core::dsss::PreparedGraph;
use nxgraph_core::prep::{preprocess, preprocess_streamed, PrepConfig};
use nxgraph_graphgen::datasets::Dataset;
use nxgraph_graphgen::rmat::{self, RmatConfig};
use nxgraph_storage::{Disk, DiskConfig, EncodingPolicy, MemDisk, OsDisk};

/// Convert generated raw edges into the `(u64, u64)` pairs preprocessing
/// consumes.
pub fn raw_pairs(d: &Dataset) -> Vec<(u64, u64)> {
    d.edges.iter().map(|e| (e.src, e.dst)).collect()
}

fn prep_cfg(d: &Dataset, p: u32, reverse: bool, encoding: EncodingPolicy) -> PrepConfig {
    let cfg = if reverse {
        PrepConfig::new(d.name.clone(), p)
    } else {
        PrepConfig::forward_only(d.name.clone(), p)
    };
    cfg.with_encoding(encoding)
}

/// Preprocess a dataset onto a fresh in-memory disk (all I/O still counted
/// by the disk's counters).
pub fn prepare_mem(d: &Dataset, p: u32, reverse: bool) -> PreparedGraph {
    prepare_mem_enc(d, p, reverse, EncodingPolicy::Raw)
}

/// [`prepare_mem`] with an explicit on-disk blob encoding policy.
pub fn prepare_mem_enc(
    d: &Dataset,
    p: u32,
    reverse: bool,
    encoding: EncodingPolicy,
) -> PreparedGraph {
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    preprocess(&raw_pairs(d), &prep_cfg(d, p, reverse, encoding), disk)
        .expect("preprocessing failed")
}

/// Preprocess onto a real directory-backed disk under `root`.
pub fn prepare_os(d: &Dataset, p: u32, reverse: bool, root: &std::path::Path) -> PreparedGraph {
    prepare_os_enc(d, p, reverse, root, EncodingPolicy::Raw)
}

/// [`prepare_os`] with an explicit on-disk blob encoding policy.
pub fn prepare_os_enc(
    d: &Dataset,
    p: u32,
    reverse: bool,
    root: &std::path::Path,
    encoding: EncodingPolicy,
) -> PreparedGraph {
    prepare_os_disk(d, p, reverse, root, encoding, DiskConfig::default()).0
}

/// [`prepare_os_enc`] that also hands back the concrete [`OsDisk`] (for
/// cold-cache drops and I/O profile snapshots) and takes a
/// [`DiskConfig`] (e.g. `O_DIRECT` reads).
pub fn prepare_os_disk(
    d: &Dataset,
    p: u32,
    reverse: bool,
    root: &std::path::Path,
    encoding: EncodingPolicy,
    disk_cfg: DiskConfig,
) -> (PreparedGraph, Arc<OsDisk>) {
    let os = Arc::new(
        OsDisk::with_config(root.join(&d.name), disk_cfg).expect("mkdir failed"),
    );
    let disk: Arc<dyn Disk> = Arc::clone(&os) as Arc<dyn Disk>;
    let g = preprocess(&raw_pairs(d), &prep_cfg(d, p, reverse, encoding), disk)
        .expect("preprocessing failed");
    (g, os)
}

/// Edges per spill chunk of the out-of-core workload: small enough that
/// the full edge list is never resident, large enough to amortise the
/// per-chunk generator reseed.
const STREAM_CHUNK_EDGES: u64 = 1 << 20;

/// Build the out-of-core workload: a forward-only R-MAT graph generated
/// and sharded **in chunks on disk** — at no point does the whole edge
/// list exist in memory — onto a real-file [`OsDisk`] under `root`.
/// Returns the graph plus the concrete disk for cold-cache control.
pub fn prepare_streamed_os(
    scale: u32,
    edge_factor: u32,
    seed: u64,
    p: u32,
    root: &std::path::Path,
    encoding: EncodingPolicy,
    disk_cfg: DiskConfig,
) -> (PreparedGraph, Arc<OsDisk>) {
    let name = format!("rmat-stream-{scale}x{edge_factor}");
    let os = Arc::new(OsDisk::with_config(root.join(&name), disk_cfg).expect("mkdir failed"));
    let disk: Arc<dyn Disk> = Arc::clone(&os) as Arc<dyn Disk>;
    let rcfg = RmatConfig::graph500(scale, edge_factor, seed);
    let chunks = rmat::generate_chunked(&rcfg, STREAM_CHUNK_EDGES).map(|chunk| {
        chunk
            .into_iter()
            .map(|e| (e.src as u32, e.dst as u32))
            .collect::<Vec<_>>()
    });
    let cfg = PrepConfig::forward_only(name, p).with_encoding(encoding);
    let g = preprocess_streamed(rcfg.num_vertices() as u32, chunks, &cfg, disk)
        .expect("streamed preprocessing failed");
    (g, os)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nxgraph_graphgen::datasets;

    #[test]
    fn prepare_mem_runs() {
        let d = datasets::livejournal_like(-8, 1);
        let g = prepare_mem(&d, 4, true);
        assert!(g.num_vertices() > 0);
        assert!(g.has_reverse());
    }

    #[test]
    fn streamed_workload_builds_and_runs() {
        let root = std::env::temp_dir().join(format!("nxbench-stream-test-{}", std::process::id()));
        let (g, os) = prepare_streamed_os(
            6,
            4,
            7,
            4,
            &root,
            EncodingPolicy::Auto,
            DiskConfig { direct_reads: true },
        );
        assert_eq!(g.num_vertices(), 1 << 6);
        assert_eq!(g.num_edges(), 4 << 6);
        assert!(!g.has_reverse());
        // The direct-read config made it through to the disk.
        assert!(os.config().direct_reads);
        drop(g);
        let _ = std::fs::remove_dir_all(&root);
    }
}
