//! Shared pieces for the baseline engines.

use std::time::Duration;

use nxgraph_storage::IoSnapshot;

use nxgraph_core::program::VertexProgram;
use nxgraph_core::types::VertexId;

/// Execution report, mirroring [`nxgraph_core::engine::RunStats`] so
/// benchmark tables can mix systems.
#[derive(Debug, Clone)]
pub struct BaselineStats {
    /// Engine name for table rows.
    pub system: &'static str,
    /// Iterations performed.
    pub iterations: usize,
    /// Wall-clock traversal time.
    pub elapsed: Duration,
    /// Disk traffic during the run.
    pub io: IoSnapshot,
    /// Total edges folded.
    pub edges_traversed: u64,
}

impl BaselineStats {
    /// Million traversed edges per second.
    pub fn mteps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.edges_traversed as f64 / 1e6 / self.elapsed.as_secs_f64()
    }
}

/// Coarse-grained absorb used by the GraphChi-like and GridGraph-like
/// engines: split the *edge list* into per-thread ranges (ignoring
/// destination ownership), give every thread a private accumulator copy,
/// and merge the copies afterwards. This is the merge cost a system pays
/// when its edges are not destination-sorted.
///
/// `edges` are `(src, dst)` with values supplied per edge by `src_val`.
pub fn coarse_absorb<P, F>(
    prog: &P,
    edges: &[(VertexId, VertexId)],
    src_val: F,
    acc_base: VertexId,
    acc_len: usize,
    threads: usize,
) -> (Vec<P::Accum>, Vec<u8>)
where
    P: VertexProgram,
    F: Fn(usize, VertexId) -> P::Value + Sync,
{
    let threads = threads.max(1);
    let ranges = nxgraph_core::parallel::split_ranges(edges.len(), threads);
    let mut partials: Vec<(Vec<P::Accum>, Vec<u8>)> = Vec::with_capacity(ranges.len());
    for _ in 0..ranges.len() {
        partials.push((vec![prog.zero(); acc_len], vec![0u8; acc_len]));
    }
    type Partial<'a, A> = &'a mut (Vec<A>, Vec<u8>);
    let tasks: Vec<(std::ops::Range<usize>, Partial<'_, P::Accum>)> = ranges
        .into_iter()
        .zip(partials.iter_mut())
        .collect();
    nxgraph_core::parallel::run_tasks(threads, tasks, |(range, partial)| {
        let (acc, has) = partial;
        for (k, &(s, d)) in edges[range.clone()].iter().enumerate() {
            let idx = range.start + k;
            let v = src_val(idx, s);
            if !prog.source_active(s, &v) {
                continue;
            }
            let slot = (d - acc_base) as usize;
            if prog.absorb(s, &v, d, &mut acc[slot]) {
                has[slot] = 1;
            }
        }
    });
    // Merge the per-thread partials (the coarse-grained overhead).
    let mut iter = partials.into_iter();
    let (mut acc, mut has) = iter.next().unwrap_or((vec![prog.zero(); acc_len], vec![0; acc_len]));
    for (pa, ph) in iter {
        for k in 0..acc_len {
            if ph[k] != 0 {
                if has[k] != 0 {
                    prog.combine(&mut acc[k], &pa[k]);
                } else {
                    acc[k] = pa[k];
                    has[k] = 1;
                }
            }
        }
    }
    (acc, has)
}

/// Encode an edge list as raw little-endian `u32` pairs (the uncompressed
/// layout of GridGraph blocks and X-stream streams: 8 bytes/edge, vs the
/// ~4.x bytes/edge of the DSSS compressed sparse format).
pub fn encode_edge_pairs(edges: &[(VertexId, VertexId)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(edges.len() * 8);
    for &(s, d) in edges {
        out.extend_from_slice(&s.to_le_bytes());
        out.extend_from_slice(&d.to_le_bytes());
    }
    out
}

/// Decode raw `u32` pairs.
pub fn decode_edge_pairs(bytes: &[u8]) -> Vec<(VertexId, VertexId)> {
    assert!(bytes.len().is_multiple_of(8), "ragged edge-pair payload");
    bytes
        .chunks_exact(8)
        .map(|c| {
            (
                u32::from_le_bytes(c[0..4].try_into().unwrap()),
                u32::from_le_bytes(c[4..8].try_into().unwrap()),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nxgraph_core::algo::pagerank::PageRank;
    use std::sync::Arc;

    #[test]
    fn edge_pair_roundtrip() {
        let edges = vec![(0u32, 1u32), (7, 7), (u32::MAX, 3)];
        assert_eq!(decode_edge_pairs(&encode_edge_pairs(&edges)), edges);
    }

    #[test]
    fn coarse_absorb_matches_serial() {
        // 4 sources all pointing at dsts 0..8.
        let mut edges = Vec::new();
        for s in 0..4u32 {
            for d in 0..8u32 {
                edges.push((s, d));
            }
        }
        let prog = PageRank::new(12, Arc::new(vec![8u32; 12]));
        let vals = [0.1, 0.2, 0.3, 0.4];
        let (acc, has) = coarse_absorb(
            &prog,
            &edges,
            |_idx, s| vals[s as usize],
            0,
            8,
            4,
        );
        let expect: f64 = vals.iter().map(|v| v / 8.0).sum();
        for k in 0..8 {
            assert!((acc[k] - expect).abs() < 1e-12);
            assert_eq!(has[k], 1);
        }
    }

    #[test]
    fn coarse_absorb_empty_edges() {
        let prog = PageRank::new(4, Arc::new(vec![1u32; 4]));
        let (acc, has) = coarse_absorb(&prog, &[], |_, _| 0.0, 0, 4, 2);
        assert_eq!(acc.len(), 4);
        assert!(has.iter().all(|&h| h == 0));
    }
}
