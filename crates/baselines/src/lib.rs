//! Re-implementations of the update strategies NXgraph is evaluated
//! against.
//!
//! The paper compares NXgraph with GraphChi, TurboGraph, GridGraph, VENUS
//! and X-stream. Those systems' binaries are not redistributable (and VENUS
//! was never released), but every comparison in the paper reduces to the
//! *update strategy*: how many bytes each system moves per iteration, in
//! what access pattern, and at what parallelism granularity. This crate
//! re-implements each strategy on the same storage substrate as NXgraph,
//! isolating exactly that variable:
//!
//! * [`graphchi`] — Parallel Sliding Windows: source-sorted shards,
//!   edge-attached values (read *and* written every iteration),
//!   coarse-grained parallelism.
//! * [`turbograph`] — pin-and-slide: for every destination interval,
//!   re-read every source interval (`n·P·Ba` interval reads/iteration).
//! * [`gridgraph`] — 2-level grid: uncompressed, unsorted edge blocks
//!   streamed with coarse (merge-based) parallelism.
//! * [`xstream`] — edge-centric scatter/gather: per-edge update records
//!   spilled to disk and re-read (`m·(Bv+Ba)` both ways).
//!
//! All engines execute the same [`VertexProgram`]s as NXgraph and are
//! tested to produce bit-identical results, so benchmark differences are
//! attributable to strategy alone.
//!
//! [`VertexProgram`]: nxgraph_core::program::VertexProgram

pub mod common;
pub mod graphchi;
pub mod gridgraph;
pub mod turbograph;
pub mod xstream;

pub use common::BaselineStats;
