//! GridGraph-like engine: 2-level hierarchical grid (ATC 2015).
//!
//! GridGraph stores edges in a `P×P` grid of **unsorted, uncompressed**
//! blocks and streams them with a dual sliding window: the destination
//! chunk stays pinned in memory while source chunks slide past. Compared
//! with NXgraph's DSSS this loses (a) the compressed sparse edge format —
//! 8 bytes/edge instead of ~4 — and (b) destination-sorted fine-grained
//! parallelism — "GridGraph can not fully utilize the parallelism of
//! multi-thread CPU without sorted edges" (§V-B) — modelled here by
//! coarse per-thread accumulator merging.
//!
//! The 2-level scheme lets GridGraph virtually combine adjacent chunks, so
//! unlike the TurboGraph-like schedule the source-interval re-reads are
//! bounded by the *virtual* partition count `P_v ≤ P`; we expose that as a
//! config knob (default: the grid's own `P`, i.e. no combining, the
//! worst case the paper's Fig 6 analysis uses).

use std::sync::Arc;
use std::time::Instant;

use nxgraph_core::dsss::PreparedGraph;
use nxgraph_core::error::EngineResult;
use nxgraph_core::program::VertexProgram;
use nxgraph_core::types::VertexId;
use nxgraph_storage::Disk;

use crate::common::{coarse_absorb, decode_edge_pairs, encode_edge_pairs, BaselineStats};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct GridGraphConfig {
    /// Worker threads.
    pub threads: usize,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for GridGraphConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            max_iterations: 50,
        }
    }
}

/// A GridGraph-like engine over raw edge blocks.
pub struct GridGraphEngine {
    disk: Arc<dyn Disk>,
    num_vertices: u32,
    num_intervals: u32,
    interval_len: u32,
    num_edges: u64,
}

impl GridGraphEngine {
    /// Build the uncompressed grid from a prepared NXgraph graph
    /// (GridGraph's own preprocessing: append each edge to its block, no
    /// sorting).
    pub fn prepare(g: &PreparedGraph) -> EngineResult<Self> {
        let p = g.num_intervals();
        for i in 0..p {
            for j in 0..p {
                let edges: Vec<(VertexId, VertexId)> =
                    g.load_subshard(i, j, false)?.iter_edges().collect();
                g.disk()
                    .write_all_to(&Self::block_file(i, j), &encode_edge_pairs(&edges))?;
            }
        }
        Ok(Self {
            disk: Arc::clone(g.disk()),
            num_vertices: g.num_vertices(),
            num_intervals: p,
            interval_len: g.manifest().interval_len() as u32,
            num_edges: g.num_edges(),
        })
    }

    fn block_file(i: u32, j: u32) -> String {
        format!("gg_block_{i}_{j}.bin")
    }

    fn interval_file(j: u32) -> String {
        format!("gg_interval_{j}.bin")
    }

    fn interval_range(&self, j: u32) -> std::ops::Range<VertexId> {
        let start = self.interval_len * j;
        start..((start + self.interval_len).min(self.num_vertices))
    }

    fn read_interval<A: nxgraph_core::types::Attr>(&self, j: u32) -> EngineResult<Vec<A>> {
        let bytes = self.disk.read_all(&Self::interval_file(j))?;
        Ok(A::decode_slice(&bytes))
    }

    fn write_interval<A: nxgraph_core::types::Attr>(
        &self,
        j: u32,
        vals: &[A],
    ) -> EngineResult<()> {
        self.disk
            .write_all_to(&Self::interval_file(j), &A::encode_slice(vals))?;
        Ok(())
    }

    /// Run a vertex program under the dual-sliding-window schedule.
    pub fn run<P: VertexProgram>(
        &self,
        prog: &P,
        cfg: &GridGraphConfig,
    ) -> EngineResult<(Vec<P::Value>, BaselineStats)> {
        let start = Instant::now();
        let io0 = self.disk.counters().snapshot();
        let p = self.num_intervals;

        for j in 0..p {
            let vals: Vec<P::Value> = self.interval_range(j).map(|v| prog.init(v)).collect();
            self.write_interval(j, &vals)?;
        }

        let mut iterations = 0;
        let mut edges_traversed = 0u64;

        for _ in 0..cfg.max_iterations {
            iterations += 1;
            let mut any_changed = false;
            // Stage writes so in-iteration source reads stay synchronous.
            let mut staged: Vec<Vec<P::Value>> = Vec::with_capacity(p as usize);

            // Destination window pinned, source window slides.
            for j in 0..p {
                let r_j = self.interval_range(j);
                let len = (r_j.end - r_j.start) as usize;
                let old: Vec<P::Value> = if P::APPLY_NEEDS_OLD {
                    self.read_interval(j)?
                } else {
                    r_j.clone().map(|v| prog.init(v)).collect()
                };
                let mut acc = vec![prog.zero(); len];
                let mut has = vec![0u8; len];
                for i in 0..p {
                    let src_vals: Vec<P::Value> = self.read_interval(i)?;
                    let r_i = self.interval_range(i);
                    let bytes = self.disk.read_all(&Self::block_file(i, j))?;
                    let edges = decode_edge_pairs(&bytes);
                    edges_traversed += edges.len() as u64;
                    if edges.is_empty() {
                        continue;
                    }
                    // Unsorted edges → coarse-grained absorb with merge.
                    let (pa, ph) = coarse_absorb(
                        prog,
                        &edges,
                        |_idx, s| src_vals[(s - r_i.start) as usize],
                        r_j.start,
                        len,
                        cfg.threads,
                    );
                    for k in 0..len {
                        if ph[k] != 0 {
                            if has[k] != 0 {
                                prog.combine(&mut acc[k], &pa[k]);
                            } else {
                                acc[k] = pa[k];
                                has[k] = 1;
                            }
                        }
                    }
                }
                let mut new_vals = old.clone();
                for k in 0..len {
                    let v = r_j.start + k as VertexId;
                    let got = has[k] != 0;
                    if got || P::ALWAYS_APPLY {
                        new_vals[k] = prog.apply(v, &old[k], &acc[k], got);
                    }
                    if prog.changed(&old[k], &new_vals[k]) {
                        any_changed = true;
                    }
                }
                staged.push(new_vals);
            }
            for (j, new_vals) in staged.into_iter().enumerate() {
                self.write_interval(j as u32, &new_vals)?;
            }

            let done = if P::ALWAYS_APPLY {
                P::APPLY_NEEDS_OLD && !any_changed
            } else {
                !any_changed
            };
            if done {
                break;
            }
        }

        let mut out: Vec<P::Value> = Vec::with_capacity(self.num_vertices as usize);
        for j in 0..p {
            out.extend(self.read_interval::<P::Value>(j)?);
        }
        Ok((
            out,
            BaselineStats {
                system: "gridgraph-like",
                iterations,
                elapsed: start.elapsed(),
                io: self.disk.counters().snapshot().delta(&io0),
                edges_traversed,
            },
        ))
    }

    /// Total edges stored in the grid.
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nxgraph_core::algo::pagerank::PageRank;
    use nxgraph_core::prep::{preprocess, PrepConfig};
    use nxgraph_storage::MemDisk;

    fn graph(p: u32) -> PreparedGraph {
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        let edges: Vec<(u64, u64)> = nxgraph_core::fig1_example_edges()
            .into_iter()
            .map(|(s, d)| (s as u64, d as u64))
            .collect();
        preprocess(&edges, &PrepConfig::forward_only("fig1", p), disk).unwrap()
    }

    #[test]
    fn pagerank_matches_reference() {
        let g = graph(3);
        let engine = GridGraphEngine::prepare(&g).unwrap();
        let prog = PageRank::new(g.num_vertices(), Arc::clone(g.out_degrees()));
        let cfg = GridGraphConfig {
            max_iterations: 10,
            ..Default::default()
        };
        let (vals, _) = engine.run(&prog, &cfg).unwrap();
        let expect = nxgraph_core::reference::pagerank(
            g.num_vertices(),
            &nxgraph_core::fig1_example_edges(),
            g.out_degrees(),
            10,
        );
        for (a, b) in vals.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn blocks_are_uncompressed() {
        // Raw pairs: exactly 8 bytes per edge, vs the CSR sub-shard which
        // amortises the destination ids.
        let g = graph(2);
        let _ = GridGraphEngine::prepare(&g).unwrap();
        let mut block_bytes = 0;
        for i in 0..2 {
            for j in 0..2 {
                block_bytes += g
                    .disk()
                    .len_of(&GridGraphEngine::block_file(i, j))
                    .unwrap();
            }
        }
        assert_eq!(block_bytes, g.num_edges() * 8);
    }
}
