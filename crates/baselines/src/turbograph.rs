//! TurboGraph-like engine: the pin-and-slide update strategy (KDD 2013).
//!
//! §III-C of the NXgraph paper: "TurboGraph and GridGraph first load
//! several source and destination intervals which can be fit into the
//! limited memory. After updating all the intervals inside the memory,
//! they replace some of the in-memory intervals with on-disk intervals."
//! With `P ≥ 2n·Ba/B_M` partitions the strategy re-reads every source
//! interval for every destination interval:
//! `Bread = m·Be + n·P·Ba`, `Bwrite = n·Ba` per iteration — linear in `P`,
//! which is the paper's core argument against it (Fig 6).
//!
//! This engine reuses the DSSS sub-shard files as its edge storage (the
//! comparison isolates the *interval scheduling*, not the edge format) and
//! honours NXgraph's fine-grained kernel so the measured difference is
//! exactly the extra interval traffic.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use nxgraph_core::dsss::PreparedGraph;
use nxgraph_core::engine::{AccBuf, finalize_interval};
use nxgraph_core::error::EngineResult;
use nxgraph_core::program::VertexProgram;

use crate::common::BaselineStats;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct TurboGraphConfig {
    /// Worker threads.
    pub threads: usize,
    /// Iteration cap.
    pub max_iterations: usize,
    /// Fine-grained chunk size (edges per task).
    pub edges_per_task: usize,
}

impl Default for TurboGraphConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            max_iterations: 50,
            edges_per_task: 8192,
        }
    }
}

/// Run a vertex program under the pin-and-slide schedule.
///
/// Interval files are (re)initialised on the graph's disk; forward
/// direction only (the strategy is defined over in-edge grids).
pub fn run<P: VertexProgram>(
    g: &PreparedGraph,
    prog: &P,
    cfg: &TurboGraphConfig,
) -> EngineResult<(Vec<P::Value>, BaselineStats)> {
    let start = Instant::now();
    let io0 = g.disk().counters().snapshot();
    let p = g.num_intervals();

    for j in 0..p {
        let r = g.interval_range(j);
        let vals: Vec<P::Value> = r.map(|v| prog.init(v)).collect();
        g.write_interval(j, &vals)?;
    }

    let mut iterations = 0;
    let mut edges_traversed = 0u64;

    for _ in 0..cfg.max_iterations {
        iterations += 1;
        let mut any_changed = false;
        // New values are staged and written after the loop so that source
        // re-reads within the iteration still observe the previous
        // iteration's attributes (synchronous semantics).
        let mut staged: Vec<Vec<P::Value>> = Vec::with_capacity(p as usize);

        // Pin each destination interval; slide over every source interval.
        for j in 0..p {
            let r_j = g.interval_range(j);
            let len = (r_j.end - r_j.start) as usize;
            let old: Vec<P::Value> = if P::APPLY_NEEDS_OLD {
                g.read_interval(j)?
            } else {
                r_j.clone().map(|v| prog.init(v)).collect()
            };
            let mut buf: Mutex<AccBuf<P>> = Mutex::new(AccBuf::new(prog, r_j.start, len));
            for i in 0..p {
                // The slide: every source interval is re-read from disk for
                // every pinned destination — the n·P·Ba term.
                let src_vals: Vec<P::Value> = g.read_interval(i)?;
                let r_i = g.interval_range(i);
                let ss = Arc::new(g.load_subshard_view(i, j, false)?);
                edges_traversed += ss.num_edges() as u64;
                nxgraph_core::engine::kernel::absorb_single(
                    prog,
                    &ss,
                    &src_vals,
                    r_i.start,
                    buf.get_mut(),
                    cfg.threads,
                    cfg.edges_per_task,
                );
            }
            let mut new_vals = old.clone();
            let ch = finalize_interval(prog, buf.get_mut(), &old, &mut new_vals);
            any_changed |= ch;
            staged.push(new_vals);
        }
        for (j, new_vals) in staged.into_iter().enumerate() {
            g.write_interval(j as u32, &new_vals)?;
        }

        let done = if P::ALWAYS_APPLY {
            P::APPLY_NEEDS_OLD && !any_changed
        } else {
            !any_changed
        };
        if done {
            break;
        }
    }

    let mut out: Vec<P::Value> = Vec::with_capacity(g.num_vertices() as usize);
    for j in 0..p {
        out.extend(g.read_interval::<P::Value>(j)?);
    }
    Ok((
        out,
        BaselineStats {
            system: "turbograph-like",
            iterations,
            elapsed: start.elapsed(),
            io: g.disk().counters().snapshot().delta(&io0),
            edges_traversed,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nxgraph_core::algo::pagerank::PageRank;
    use nxgraph_core::prep::{preprocess, PrepConfig};
    use nxgraph_storage::{Disk, MemDisk};

    fn graph(p: u32) -> PreparedGraph {
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        let edges: Vec<(u64, u64)> = nxgraph_core::fig1_example_edges()
            .into_iter()
            .map(|(s, d)| (s as u64, d as u64))
            .collect();
        preprocess(&edges, &PrepConfig::forward_only("fig1", p), disk).unwrap()
    }

    #[test]
    fn pagerank_matches_reference() {
        let g = graph(4);
        let prog = PageRank::new(g.num_vertices(), Arc::clone(g.out_degrees()));
        let cfg = TurboGraphConfig {
            max_iterations: 10,
            ..Default::default()
        };
        let (vals, stats) = run(&g, &prog, &cfg).unwrap();
        assert_eq!(stats.iterations, 10);
        let expect = nxgraph_core::reference::pagerank(
            g.num_vertices(),
            &nxgraph_core::fig1_example_edges(),
            g.out_degrees(),
            10,
        );
        for (a, b) in vals.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn interval_reads_scale_with_p() {
        // The defining property: interval read traffic grows linearly in P.
        let mut traffic = Vec::new();
        for p in [2u32, 4] {
            let g = graph(p);
            let prog = PageRank::new(g.num_vertices(), Arc::clone(g.out_degrees()));
            let cfg = TurboGraphConfig {
                max_iterations: 1,
                ..Default::default()
            };
            let before = g.disk().counters().read_bytes();
            run(&g, &prog, &cfg).unwrap();
            traffic.push(g.disk().counters().read_bytes() - before);
        }
        // P=4 reads noticeably more than P=2 (same graph, same work).
        assert!(
            traffic[1] > traffic[0],
            "P=4 traffic {} should exceed P=2 traffic {}",
            traffic[1],
            traffic[0]
        );
    }
}
