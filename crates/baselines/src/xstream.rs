//! X-stream-like engine: edge-centric scatter/gather (SOSP 2013).
//!
//! X-stream never sorts edges; it streams the raw edge list twice per
//! iteration through two phases:
//!
//! * **Scatter** — stream all edges; for each edge whose source is active,
//!   append an *update record* `(dst, accum)` to the destination
//!   partition's update file.
//! * **Gather** — stream each partition's update file and fold the records
//!   into the vertex values.
//!
//! The update stream costs `m·(Bv + Ba)` written *and* read back every
//! iteration — the traffic NXgraph's hubs compress by the in-degree factor
//! `d` and SPU avoids entirely, which is why X-stream trails in Tables V
//! and VI.

use std::sync::Arc;
use std::time::Instant;

use nxgraph_core::dsss::PreparedGraph;
use nxgraph_core::error::EngineResult;
use nxgraph_core::program::VertexProgram;
use nxgraph_core::types::{Attr, VertexId};
use nxgraph_storage::format;
use nxgraph_storage::Disk;

use crate::common::{decode_edge_pairs, encode_edge_pairs, BaselineStats};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct XStreamConfig {
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for XStreamConfig {
    fn default() -> Self {
        Self { max_iterations: 50 }
    }
}

/// An X-stream-like engine over a flat edge stream and partitioned vertex
/// state.
pub struct XStreamEngine {
    disk: Arc<dyn Disk>,
    num_vertices: u32,
    num_partitions: u32,
    partition_len: u32,
    num_edges: u64,
}

impl XStreamEngine {
    /// Build the streaming-partition layout from a prepared graph: one flat
    /// edge file per *source* partition (X-stream shuffles edges by source
    /// so scatter can read vertex state sequentially).
    pub fn prepare(g: &PreparedGraph) -> EngineResult<Self> {
        let p = g.num_intervals();
        for i in 0..p {
            let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
            for j in 0..p {
                edges.extend(g.load_subshard(i, j, false)?.iter_edges());
            }
            g.disk()
                .write_all_to(&Self::edges_file(i), &encode_edge_pairs(&edges))?;
        }
        Ok(Self {
            disk: Arc::clone(g.disk()),
            num_vertices: g.num_vertices(),
            num_partitions: p,
            partition_len: g.manifest().interval_len() as u32,
            num_edges: g.num_edges(),
        })
    }

    fn edges_file(i: u32) -> String {
        format!("xs_edges_{i}.bin")
    }

    fn vertices_file(j: u32) -> String {
        format!("xs_vertices_{j}.bin")
    }

    fn updates_file(j: u32) -> String {
        format!("xs_updates_{j}.bin")
    }

    fn partition_range(&self, j: u32) -> std::ops::Range<VertexId> {
        let start = self.partition_len * j;
        start..((start + self.partition_len).min(self.num_vertices))
    }

    fn partition_of(&self, v: VertexId) -> u32 {
        v / self.partition_len
    }

    /// Run a vertex program under scatter/gather.
    pub fn run<P: VertexProgram>(
        &self,
        prog: &P,
        cfg: &XStreamConfig,
    ) -> EngineResult<(Vec<P::Value>, BaselineStats)> {
        let start = Instant::now();
        let io0 = self.disk.counters().snapshot();
        let p = self.num_partitions;

        for j in 0..p {
            let vals: Vec<P::Value> = self.partition_range(j).map(|v| prog.init(v)).collect();
            self.disk
                .write_all_to(&Self::vertices_file(j), &P::Value::encode_slice(&vals))?;
        }

        let mut iterations = 0;
        let mut edges_traversed = 0u64;

        for _ in 0..cfg.max_iterations {
            iterations += 1;

            // Scatter: stream edges per source partition, spill update
            // records per destination partition.
            let mut update_bufs: Vec<Vec<u8>> = vec![Vec::new(); p as usize];
            for i in 0..p {
                let src_bytes = self.disk.read_all(&Self::vertices_file(i))?;
                let src_vals = P::Value::decode_slice(&src_bytes);
                let r_i = self.partition_range(i);
                let edges = decode_edge_pairs(&self.disk.read_all(&Self::edges_file(i))?);
                edges_traversed += edges.len() as u64;
                for (s, d) in edges {
                    let sv = src_vals[(s - r_i.start) as usize];
                    if !prog.source_active(s, &sv) {
                        continue;
                    }
                    let mut acc = prog.zero();
                    if prog.absorb(s, &sv, d, &mut acc) {
                        let buf = &mut update_bufs[self.partition_of(d) as usize];
                        format::push_u32(buf, d);
                        acc.write_to(buf);
                    }
                }
            }
            for j in 0..p {
                self.disk
                    .write_all_to(&Self::updates_file(j), &update_bufs[j as usize])?;
            }
            drop(update_bufs);

            // Gather: fold each partition's update stream.
            let mut any_changed = false;
            for j in 0..p {
                let r_j = self.partition_range(j);
                let len = (r_j.end - r_j.start) as usize;
                let old_bytes = self.disk.read_all(&Self::vertices_file(j))?;
                let old = P::Value::decode_slice(&old_bytes);
                let mut acc = vec![prog.zero(); len];
                let mut has = vec![0u8; len];
                let upd = self.disk.read_all(&Self::updates_file(j))?;
                let rec = 4 + P::Accum::SIZE;
                assert!(upd.len() % rec == 0, "ragged update stream");
                for chunk in upd.chunks_exact(rec) {
                    let d = u32::from_le_bytes(chunk[0..4].try_into().unwrap());
                    let a = P::Accum::read_from(&chunk[4..]);
                    let k = (d - r_j.start) as usize;
                    if has[k] != 0 {
                        prog.combine(&mut acc[k], &a);
                    } else {
                        acc[k] = a;
                        has[k] = 1;
                    }
                }
                let mut new_vals = old.clone();
                for k in 0..len {
                    let v = r_j.start + k as VertexId;
                    let got = has[k] != 0;
                    if got || P::ALWAYS_APPLY {
                        new_vals[k] = prog.apply(v, &old[k], &acc[k], got);
                    }
                    if prog.changed(&old[k], &new_vals[k]) {
                        any_changed = true;
                    }
                }
                self.disk
                    .write_all_to(&Self::vertices_file(j), &P::Value::encode_slice(&new_vals))?;
                let _ = self.disk.remove(&Self::updates_file(j));
            }

            let done = if P::ALWAYS_APPLY {
                false // run to the configured cap
            } else {
                !any_changed
            };
            if done {
                break;
            }
        }

        let mut out: Vec<P::Value> = Vec::with_capacity(self.num_vertices as usize);
        for j in 0..p {
            let bytes = self.disk.read_all(&Self::vertices_file(j))?;
            out.extend(P::Value::decode_slice(&bytes));
        }
        Ok((
            out,
            BaselineStats {
                system: "xstream-like",
                iterations,
                elapsed: start.elapsed(),
                io: self.disk.counters().snapshot().delta(&io0),
                edges_traversed,
            },
        ))
    }

    /// Total edges in the stream.
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nxgraph_core::algo::bfs::Bfs;
    use nxgraph_core::algo::pagerank::PageRank;
    use nxgraph_core::prep::{preprocess, PrepConfig};
    use nxgraph_storage::MemDisk;

    fn graph(p: u32) -> PreparedGraph {
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        let edges: Vec<(u64, u64)> = nxgraph_core::fig1_example_edges()
            .into_iter()
            .map(|(s, d)| (s as u64, d as u64))
            .collect();
        preprocess(&edges, &PrepConfig::forward_only("fig1", p), disk).unwrap()
    }

    #[test]
    fn pagerank_matches_reference() {
        let g = graph(4);
        let engine = XStreamEngine::prepare(&g).unwrap();
        let prog = PageRank::new(g.num_vertices(), Arc::clone(g.out_degrees()));
        let (vals, stats) = engine
            .run(&prog, &XStreamConfig { max_iterations: 10 })
            .unwrap();
        assert_eq!(stats.iterations, 10);
        let expect = nxgraph_core::reference::pagerank(
            g.num_vertices(),
            &nxgraph_core::fig1_example_edges(),
            g.out_degrees(),
            10,
        );
        for (a, b) in vals.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn bfs_matches_reference() {
        let g = graph(3);
        let engine = XStreamEngine::prepare(&g).unwrap();
        let (depths, _) = engine
            .run(&Bfs::new(0), &XStreamConfig { max_iterations: 100 })
            .unwrap();
        let expect = nxgraph_core::reference::bfs(7, &nxgraph_core::fig1_example_edges(), 0);
        assert_eq!(depths, expect);
    }

    #[test]
    fn update_stream_traffic_is_per_edge() {
        let g = graph(2);
        let engine = XStreamEngine::prepare(&g).unwrap();
        let prog = PageRank::new(g.num_vertices(), Arc::clone(g.out_degrees()));
        let (_, stats) = engine
            .run(&prog, &XStreamConfig { max_iterations: 2 })
            .unwrap();
        // Each iteration writes m update records of 12 bytes (u32 + f64).
        let m = g.num_edges();
        assert!(stats.io.written_bytes >= stats.iterations as u64 * m * 12);
    }
}
