//! GraphChi-like engine: Parallel Sliding Windows (OSDI 2012).
//!
//! GraphChi's shards hold the in-edges of an interval **sorted by source**
//! and store data *on the edges*: an update reads the attribute attached to
//! each in-edge (written there by the source's previous update) and writes
//! its new attribute onto its out-edges. Per iteration this costs
//! `m·(Be + Ba)` read plus `m·Ba` written — "all incoming and outgoing
//! edges of vertices in an interval need to be loaded into memory …
//! unnecessary disk data transfer" (§I).
//!
//! Source-sorted edges also deny destination-exclusive chunking, so
//! parallelism is coarse-grained: threads split the raw edge array and
//! merge private accumulators (Table IV's "src-sorted, coarse-grained"
//! row).

use std::sync::Arc;
use std::time::Instant;

use nxgraph_core::dsss::PreparedGraph;
use nxgraph_core::error::EngineResult;
use nxgraph_core::program::VertexProgram;
use nxgraph_core::types::{Attr, VertexId};
use nxgraph_storage::Disk;

use crate::common::{coarse_absorb, decode_edge_pairs, encode_edge_pairs, BaselineStats};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct GraphChiConfig {
    /// Worker threads.
    pub threads: usize,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for GraphChiConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            max_iterations: 50,
        }
    }
}

/// A GraphChi-like engine over its own source-sorted shard files.
pub struct GraphChiEngine {
    disk: Arc<dyn Disk>,
    num_vertices: u32,
    num_intervals: u32,
    interval_len: u32,
    num_edges: u64,
    out_degrees: Arc<Vec<u32>>,
}

impl GraphChiEngine {
    /// Build source-sorted shards from a prepared NXgraph graph onto the
    /// same disk (GraphChi's own "sharder" step).
    pub fn prepare(g: &PreparedGraph) -> EngineResult<Self> {
        let p = g.num_intervals();
        for j in 0..p {
            let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
            for i in 0..p {
                edges.extend(g.load_subshard(i, j, false)?.iter_edges());
            }
            // PSW order: by source (then destination for determinism).
            edges.sort_unstable();
            g.disk()
                .write_all_to(&Self::shard_file(j), &encode_edge_pairs(&edges))?;
        }
        Ok(Self {
            disk: Arc::clone(g.disk()),
            num_vertices: g.num_vertices(),
            num_intervals: p,
            interval_len: g.manifest().interval_len() as u32,
            num_edges: g.num_edges(),
            out_degrees: Arc::clone(g.out_degrees()),
        })
    }

    fn shard_file(j: u32) -> String {
        format!("gc_shard_{j}.bin")
    }

    fn edge_values_file(j: u32) -> String {
        format!("gc_vals_{j}.bin")
    }

    fn interval_range(&self, j: u32) -> std::ops::Range<VertexId> {
        let start = self.interval_len * j;
        start..((start + self.interval_len).min(self.num_vertices))
    }

    /// Run a vertex program to convergence. Forward direction only (PSW
    /// shards are in-edge shards).
    pub fn run<P: VertexProgram>(
        &self,
        prog: &P,
        cfg: &GraphChiConfig,
    ) -> EngineResult<(Vec<P::Value>, BaselineStats)> {
        let start = Instant::now();
        let io0 = self.disk.counters().snapshot();
        let p = self.num_intervals;
        let n = self.num_vertices;

        // In-memory vertex values; disk carries the per-edge copies, which
        // is where GraphChi's I/O goes.
        let mut vals: Vec<P::Value> = (0..n).map(|v| prog.init(v)).collect();

        // Initial edge values: each edge carries its source's attribute.
        let shard_edges: Vec<Vec<(VertexId, VertexId)>> = (0..p)
            .map(|j| {
                let bytes = self.disk.read_all(&Self::shard_file(j))?;
                Ok(decode_edge_pairs(&bytes))
            })
            .collect::<EngineResult<_>>()?;
        for j in 0..p {
            self.write_edge_values::<P>(j, &shard_edges[j as usize], &vals)?;
        }

        let mut iterations = 0;
        let mut edges_traversed = 0u64;
        let mut next = vals.clone();

        for _ in 0..cfg.max_iterations {
            iterations += 1;
            // PSW: execution intervals processed in sequence.
            for j in 0..p {
                // Stream the shard (edges) and its edge-value companion.
                let edges_bytes = self.disk.read_all(&Self::shard_file(j))?;
                let edges = decode_edge_pairs(&edges_bytes);
                let val_bytes = self.disk.read_all(&Self::edge_values_file(j))?;
                let edge_vals = P::Value::decode_slice(&val_bytes);
                edges_traversed += edges.len() as u64;

                let r = self.interval_range(j);
                let len = (r.end - r.start) as usize;
                let (acc, has) = coarse_absorb(
                    prog,
                    &edges,
                    |idx, _s| edge_vals[idx],
                    r.start,
                    len,
                    cfg.threads,
                );
                for k in 0..len {
                    let v = r.start + k as VertexId;
                    let got = has[k] != 0;
                    let old = vals[v as usize];
                    next[v as usize] = if got || P::ALWAYS_APPLY {
                        prog.apply(v, &old, &acc[k], got)
                    } else {
                        old
                    };
                }
            }
            let changed = vals
                .iter()
                .zip(next.iter())
                .any(|(o, nw)| prog.changed(o, nw));
            std::mem::swap(&mut vals, &mut next);

            // Slide the windows: write the new attributes back onto every
            // shard's edges (the m·Ba write traffic).
            for j in 0..p {
                self.write_edge_values::<P>(j, &shard_edges[j as usize], &vals)?;
            }
            if !changed {
                break;
            }
        }

        Ok((
            vals,
            BaselineStats {
                system: "graphchi-like",
                iterations,
                elapsed: start.elapsed(),
                io: self.disk.counters().snapshot().delta(&io0),
                edges_traversed,
            },
        ))
    }

    /// Number of edges across all shards.
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// The out-degree table (shared with the NXgraph preparation).
    pub fn out_degrees(&self) -> &Arc<Vec<u32>> {
        &self.out_degrees
    }

    fn write_edge_values<P: VertexProgram>(
        &self,
        j: u32,
        edges: &[(VertexId, VertexId)],
        vals: &[P::Value],
    ) -> EngineResult<()> {
        let mut buf = Vec::with_capacity(edges.len() * P::Value::SIZE);
        for &(s, _) in edges {
            vals[s as usize].write_to(&mut buf);
        }
        self.disk
            .write_all_to(&Self::edge_values_file(j), &buf)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nxgraph_core::algo::pagerank::PageRank;
    use nxgraph_core::prep::{preprocess, PrepConfig};
    use nxgraph_storage::MemDisk;

    fn graph() -> PreparedGraph {
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        let edges: Vec<(u64, u64)> = nxgraph_core::fig1_example_edges()
            .into_iter()
            .map(|(s, d)| (s as u64, d as u64))
            .collect();
        preprocess(&edges, &PrepConfig::forward_only("fig1", 4), disk).unwrap()
    }

    #[test]
    fn pagerank_matches_nxgraph_reference() {
        let g = graph();
        let engine = GraphChiEngine::prepare(&g).unwrap();
        let prog = PageRank::new(g.num_vertices(), Arc::clone(g.out_degrees()));
        let cfg = GraphChiConfig {
            threads: 3,
            max_iterations: 10,
        };
        let (vals, stats) = engine.run(&prog, &cfg).unwrap();
        assert_eq!(stats.iterations, 10);
        let expect = nxgraph_core::reference::pagerank(
            g.num_vertices(),
            &nxgraph_core::fig1_example_edges(),
            g.out_degrees(),
            10,
        );
        for (a, b) in vals.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn io_profile_includes_edge_value_traffic() {
        let g = graph();
        let engine = GraphChiEngine::prepare(&g).unwrap();
        let prog = PageRank::new(g.num_vertices(), Arc::clone(g.out_degrees()));
        let cfg = GraphChiConfig {
            threads: 1,
            max_iterations: 3,
        };
        let (_, stats) = engine.run(&prog, &cfg).unwrap();
        let m = g.num_edges();
        // Reads at least m·(8 + Ba) per iteration (pairs + edge values).
        assert!(stats.io.read_bytes >= stats.iterations as u64 * m * 16);
        // Writes at least m·Ba per iteration.
        assert!(stats.io.written_bytes >= stats.iterations as u64 * m * 8);
    }
}
