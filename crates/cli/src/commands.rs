//! Subcommand implementations.

use std::fs::File;
use std::io::BufWriter;
use std::sync::Arc;

use nxgraph_core::algo;
use nxgraph_core::engine::EngineConfig;
use nxgraph_core::prep::{preprocess, PrepConfig};
use nxgraph_core::PreparedGraph;
use nxgraph_graphgen::{er, io as gio, mesh, rmat};
use nxgraph_storage::{Disk, DiskConfig, EncodingPolicy, OsDisk, RetryPolicy};

use crate::args::Args;

/// Dispatch a subcommand.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let (cmd, rest) = argv.split_first().ok_or("missing subcommand")?;
    let args = Args::parse(rest)?;
    match cmd.as_str() {
        "generate" => generate(&args),
        "prep" => prep(&args),
        "info" => info(&args),
        "compact" => compact(&args),
        "scrub" => scrub(&args),
        "pagerank" => pagerank(&args),
        "bfs" => bfs(&args),
        "sssp" => sssp(&args),
        "wcc" => wcc(&args),
        "scc" => scc(&args),
        "hits" => hits(&args),
        "serve" => serve(&args),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn generate(args: &Args) -> Result<(), String> {
    let kind = args.pos(0, "generator kind (rmat|mesh|er)")?;
    let out: String = args.require("out")?;
    let seed = args.get_or("seed", 42u64)?;
    let edges = match kind {
        "rmat" => {
            let scale = args.get_or("scale", 16u32)?;
            let ef = args.get_or("edge-factor", 16u32)?;
            rmat::generate(&rmat::RmatConfig::graph500(scale, ef, seed))
        }
        "mesh" => {
            let scale = args.get_or("scale", 16u32)?;
            mesh::generate(&mesh::MeshConfig::with_scale(scale))
        }
        "er" => {
            let n = args.get_or("vertices", 1u64 << 16)?;
            let m = args.get_or("edges", 1usize << 20)?;
            er::generate(n, m, seed)
        }
        other => return Err(format!("unknown generator {other:?}")),
    };
    let file = File::create(&out).map_err(|e| format!("create {out}: {e}"))?;
    let mut w = BufWriter::new(file);
    gio::write_text(&mut w, &edges).map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {} edges to {out}", edges.len());
    Ok(())
}

fn prep(args: &Args) -> Result<(), String> {
    let input = args.pos(0, "input edge-list file")?;
    let dir = args.pos(1, "output graph directory")?;
    let p = args.get_or("intervals", 16u32)?;
    let name: String = args.get_or("name", "graph".to_string())?;
    let reverse = !args.switch("--no-reverse");
    let encoding: EncodingPolicy = args.get_or("encoding", EncodingPolicy::Raw)?;

    let file = File::open(input).map_err(|e| format!("open {input}: {e}"))?;
    let edges = gio::read_text(file).map_err(|e| format!("parse {input}: {e}"))?;
    let raw: Vec<(u64, u64)> = edges.iter().map(|e| (e.src, e.dst)).collect();

    let disk: Arc<dyn Disk> = Arc::new(OsDisk::new(dir).map_err(|e| e.to_string())?);
    let cfg = PrepConfig {
        name,
        num_intervals: p,
        build_reverse: reverse,
        encoding,
    };
    let started = std::time::Instant::now();
    let g = preprocess(&raw, &cfg, disk).map_err(|e| e.to_string())?;
    println!(
        "prepared {}: {} vertices, {} edges, P={} ({} sub-shards{}), encoding {}, in {:?}",
        dir,
        g.num_vertices(),
        g.num_edges(),
        p,
        p * p,
        if reverse { " + reverse" } else { "" },
        encoding,
        started.elapsed()
    );
    Ok(())
}

fn open(args: &Args) -> Result<PreparedGraph, String> {
    let dir = args.pos(0, "graph directory")?;
    let disk_cfg = DiskConfig { direct_reads: args.switch("--direct") };
    let disk: Arc<dyn Disk> =
        Arc::new(OsDisk::with_config(dir, disk_cfg).map_err(|e| e.to_string())?);
    let mut g = PreparedGraph::open(disk).map_err(|e| e.to_string())?;
    let mut retry = RetryPolicy::default();
    if let Some(attempts) = args.get::<u32>("retries")? {
        if attempts == 0 {
            return Err("--retries must be at least 1 (1 disables retrying)".into());
        }
        retry = RetryPolicy::with_attempts(attempts);
    }
    if let Some(ms) = args.get::<u64>("retry-backoff-ms")? {
        retry = retry.with_base_backoff(std::time::Duration::from_millis(ms));
    }
    g.set_retry_policy(retry);
    Ok(g)
}

fn engine_cfg(args: &Args) -> Result<EngineConfig, String> {
    let mut cfg = EngineConfig::default();
    if let Some(t) = args.get::<usize>("threads")? {
        // Through the builder so prefetch re-derives from the effective
        // thread count (`--threads 1` must not spawn decode workers).
        cfg = cfg.with_threads(t);
    }
    if let Some(mib) = args.get::<u64>("budget-mib")? {
        cfg.memory_budget = mib << 20;
    }
    // Only force prefetch *off*: absent the flag, keep EngineConfig's
    // thread-count-aware default (off on effectively single-thread runs).
    if args.switch("--no-prefetch") {
        cfg.prefetch = false;
    }
    if args.switch("--io-sched") {
        cfg = cfg.with_io_scheduler(true);
    }
    if let Some(depth) = args.get::<usize>("io-queue-depth")? {
        if depth == 0 {
            return Err("--io-queue-depth must be at least 1".into());
        }
        cfg = cfg.with_io_queue_depth(depth);
    }
    if let Some(ms) = args.get::<u64>("io-deadline-ms")? {
        if ms == 0 {
            return Err("--io-deadline-ms must be at least 1".into());
        }
        cfg = cfg.with_io_deadline(Some(std::time::Duration::from_millis(ms)));
    }
    Ok(cfg)
}

/// Print the per-disk I/O profile after an engine run, when the disk
/// exposes one (real `OsDisk`s always do).
fn report_io_profile(g: &PreparedGraph) {
    if let Some(profile) = g.disk().io_profile() {
        let io = profile.snapshot();
        println!(
            "io profile: {} read / {} write syscalls, {} opens; direct: {} reads / {} bytes / {} fallbacks; sched: {} batches / {} reads, max queue depth {}; {} cache drops",
            io.read_syscalls,
            io.write_syscalls,
            io.opens,
            io.direct_reads,
            io.direct_bytes,
            io.direct_fallbacks,
            io.sched_batches,
            io.sched_reads,
            io.max_queue_depth,
            io.cache_drops
        );
        println!(
            "reliability : {} retries / {} giveups; {} injected faults, {} watchdog stalls",
            io.retries, io.giveups, io.injected_faults, io.stalls
        );
    }
}

fn info(args: &Args) -> Result<(), String> {
    let g = open(args)?;
    let m = g.manifest();
    println!("name          : {}", m.name);
    println!("vertices      : {}", m.num_vertices);
    println!("edges         : {}", m.num_edges);
    println!("intervals (P) : {}", m.num_intervals);
    println!("reverse shards: {}", m.has_reverse);
    println!(
        "subshard bytes: {}",
        g.total_subshard_bytes().map_err(|e| e.to_string())?
    );
    if let Some(enc) = m.extra.get(nxgraph_core::dsss::ENCODING_MANIFEST_KEY) {
        println!("encoding      : {enc}");
    }
    if let (Some(Ok(raw)), Some(Ok(on_disk))) = (
        m.extra
            .get(nxgraph_core::dsss::SS_RAW_BYTES_MANIFEST_KEY)
            .map(|v| v.parse::<u64>()),
        m.extra
            .get(nxgraph_core::dsss::SS_DISK_BYTES_MANIFEST_KEY)
            .map(|v| v.parse::<u64>()),
    ) {
        println!(
            "blob ratio    : {:.2}x ({raw} raw / {on_disk} on disk)",
            raw as f64 / on_disk.max(1) as f64
        );
    }
    let chains = m.chains().map_err(|e| e.to_string())?;
    let pending: Vec<_> = chains.iter().filter(|c| c.3.deltas > 0).collect();
    if !pending.is_empty() {
        let total: u32 = pending.iter().map(|c| c.3.deltas).sum();
        println!(
            "delta chains  : {} cells with {} pending delta blobs (run `compact`)",
            pending.len(),
            total
        );
    }
    let degrees_gen = m.degrees_gen().map_err(|e| e.to_string())?;
    if degrees_gen > 0 {
        println!("degree table  : generation {degrees_gen}");
    }
    let quarantined = g
        .disk()
        .list()
        .into_iter()
        .filter(|n| n.starts_with(nxgraph_core::maintain::QUARANTINE_PREFIX))
        .count();
    if quarantined > 0 {
        println!("quarantined   : {quarantined} corrupt blob(s) parked by scrub (run `compact` to sweep)");
    }
    let deg = g.out_degrees();
    let max = deg.iter().max().copied().unwrap_or(0);
    println!(
        "out-degree    : mean {:.2}, max {}",
        m.num_edges as f64 / m.num_vertices as f64,
        max
    );
    println!(
        "over-releases : {} (unbalanced MemoryBudget releases this process)",
        nxgraph_storage::global_over_releases()
    );
    report_io_profile(&g);
    Ok(())
}

/// Fold every pending delta chain back into single base blobs and sweep
/// unreferenced files (crash leftovers, quarantined blobs, stale
/// generations).
fn compact(args: &Args) -> Result<(), String> {
    let g = open(args)?;
    let before = g.total_subshard_bytes().map_err(|e| e.to_string())?;
    let mut dg = nxgraph_core::dynamic::DynamicGraph::new(g).map_err(|e| e.to_string())?;
    let started = std::time::Instant::now();
    let report = dg.compact().map_err(|e| e.to_string())?;
    let after = dg
        .graph()
        .total_subshard_bytes()
        .map_err(|e| e.to_string())?;
    println!(
        "compacted {} cells in {:?}; swept {} orphan files ({} bytes); forward sub-shard bytes {before} -> {after}",
        report.cells_folded,
        started.elapsed(),
        report.files_swept,
        report.bytes_swept
    );
    Ok(())
}

/// Re-verify every blob the manifest references (checksums, structure),
/// quarantining corrupt referenced blobs and sweeping corrupt orphans.
/// Exits nonzero when corruption was found.
fn scrub(args: &Args) -> Result<(), String> {
    let dir = args.pos(0, "graph directory")?;
    let disk = OsDisk::new(dir).map_err(|e| e.to_string())?;
    let started = std::time::Instant::now();
    let report = nxgraph_core::maintain::scrub(&disk).map_err(|e| e.to_string())?;
    println!(
        "scrubbed {} files ({} bytes) in {:?}: {} clean, {} orphaned, {} corrupt swept",
        report.files_scanned,
        report.bytes_scanned,
        started.elapsed(),
        report.clean,
        report.orphans,
        report.swept.len()
    );
    if !report.is_clean() {
        for name in &report.corrupt {
            eprintln!("CORRUPT (quarantined): {name}");
        }
        return Err(format!(
            "{} referenced blob(s) failed verification; re-prepare the graph or restore from backup",
            report.corrupt.len()
        ));
    }
    Ok(())
}

fn report(g: &PreparedGraph, stats: &nxgraph_core::engine::RunStats) {
    println!(
        "done: {:?} strategy, {} iterations, {:?}, {:.1} MTEPS, {} read / {} written",
        stats.strategy,
        stats.iterations,
        stats.elapsed,
        stats.mteps(),
        stats.io.read_bytes,
        stats.io.written_bytes
    );
    report_io_profile(g);
}

fn pagerank(args: &Args) -> Result<(), String> {
    let g = open(args)?;
    let cfg = engine_cfg(args)?;
    let iters = args.get_or("iters", 10usize)?;
    let top = args.get_or("top", 10usize)?;
    let (ranks, stats) = algo::pagerank(&g, iters, &cfg).map_err(|e| e.to_string())?;
    report(&g, &stats);
    let mapping = g.load_reverse_mapping().map_err(|e| e.to_string())?;
    let mut order: Vec<usize> = (0..ranks.len()).collect();
    order.sort_by(|&a, &b| ranks[b].total_cmp(&ranks[a]));
    println!("top {top} vertices (original index: rank):");
    for &v in order.iter().take(top) {
        println!("  {}: {:.8}", mapping[v], ranks[v]);
    }
    Ok(())
}

fn bfs(args: &Args) -> Result<(), String> {
    let g = open(args)?;
    let cfg = engine_cfg(args)?;
    let root: u32 = args.get_or("root", 0u32)?;
    let (depths, stats) = algo::bfs(&g, root, &cfg).map_err(|e| e.to_string())?;
    report(&g, &stats);
    let reached = depths.iter().filter(|&&d| d != u32::MAX).count();
    println!(
        "bfs from id {root}: {reached}/{} reachable, max depth {:?}",
        depths.len(),
        algo::bfs::max_depth(&depths)
    );
    Ok(())
}

fn sssp(args: &Args) -> Result<(), String> {
    let g = open(args)?;
    let mut cfg = engine_cfg(args)?;
    cfg.max_iterations = g.num_vertices() as usize + 1;
    let root: u32 = args.get_or("root", 0u32)?;
    let prog = algo::Sssp::new(root, algo::sssp::hash_weights(1.0, 10.0));
    let (dist, stats) =
        nxgraph_core::engine::run(&g, &prog, &cfg).map_err(|e| e.to_string())?;
    report(&g, &stats);
    let reached = dist.iter().filter(|d| d.is_finite()).count();
    let max = dist.iter().filter(|d| d.is_finite()).fold(0.0f64, |a, &b| a.max(b));
    println!("sssp from id {root} (hash weights 1..10): {reached} reachable, max distance {max:.3}");
    Ok(())
}

fn wcc(args: &Args) -> Result<(), String> {
    let g = open(args)?;
    let cfg = engine_cfg(args)?;
    let (labels, stats) = algo::wcc(&g, &cfg).map_err(|e| e.to_string())?;
    report(&g, &stats);
    println!(
        "wcc: {} components, largest {}",
        algo::wcc::component_count(&labels),
        algo::wcc::largest_component(&labels)
    );
    Ok(())
}

fn scc(args: &Args) -> Result<(), String> {
    let g = open(args)?;
    let cfg = engine_cfg(args)?;
    let out = algo::scc(&g, &cfg).map_err(|e| e.to_string())?;
    let mut labels = out.labels.clone();
    labels.sort_unstable();
    labels.dedup();
    println!(
        "scc: {} components in {} rounds, {} engine iterations, {:?}",
        labels.len(),
        out.rounds,
        out.iterations,
        out.elapsed
    );
    Ok(())
}

fn hits(args: &Args) -> Result<(), String> {
    let g = open(args)?;
    let cfg = engine_cfg(args)?;
    let iters = args.get_or("iters", 10usize)?;
    let top = args.get_or("top", 5usize)?;
    let out = algo::hits(&g, iters, &cfg).map_err(|e| e.to_string())?;
    let mapping = g.load_reverse_mapping().map_err(|e| e.to_string())?;
    let mut order: Vec<usize> = (0..out.authorities.len()).collect();
    order.sort_by(|&a, &b| out.authorities[b].total_cmp(&out.authorities[a]));
    println!("hits ({} iterations, {:?}): top {top} authorities:", out.iterations, out.elapsed);
    for &v in order.iter().take(top) {
        println!("  {}: auth {:.6} hub {:.6}", mapping[v], out.authorities[v], out.hubs[v]);
    }
    Ok(())
}

/// Mixed read/update serving demo: concurrent point queries over pinned
/// snapshots while update batches commit through the writer.
fn serve(args: &Args) -> Result<(), String> {
    use nxgraph_core::dynamic::DynamicConfig;
    use nxgraph_core::{GraphService, Query, ServeConfig, ServeError};

    let g = open(args)?;
    let n = g.num_vertices();
    if n == 0 {
        return Err("cannot serve an empty graph".into());
    }
    let known = g.load_reverse_mapping().map_err(|e| e.to_string())?;
    let queries = args.get_or("queries", 64usize)?;
    let readers = args.get_or("readers", 2usize)?.max(1);
    let update_batches = args.get_or("update-batches", 4usize)?;
    let batch_size = args.get_or("batch-size", 64usize)?;
    let seed = args.get_or("seed", 42u64)?;
    let cfg = ServeConfig {
        max_concurrent: args.get_or("max-concurrent", 4usize)?,
        query_budget: args.get_or("query-budget-mib", 64u64)? << 20,
        total_budget: args
            .get::<u64>("total-budget-mib")?
            .map_or(u64::MAX, |m| m << 20),
        threads: args.get_or("query-threads", 1usize)?,
        ..ServeConfig::default()
    };
    // Delta-log + background folds: the serving configuration (rewrite
    // mode is rejected by the service).
    let dg = nxgraph_core::dynamic::DynamicGraph::with_config(g, DynamicConfig::background())
        .map_err(|e| e.to_string())?;
    let svc = GraphService::new(dg, cfg).map_err(|e| e.to_string())?;

    // SplitMix64: deterministic query/update streams without a rand dep.
    let mix = |state: &mut u64| -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut x = *state;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    };
    let query_for = |k: u64| -> Query {
        let mut s = seed ^ (k << 1);
        let a = (mix(&mut s) % n as u64) as u32;
        let b = (mix(&mut s) % n as u64) as u32;
        match k % 4 {
            0 => Query::Bfs { root: a, target: b },
            1 => Query::Sssp { root: a, target: b },
            2 => Query::PprFromSeed { seed: a, iterations: 5, k: 8 },
            _ => Query::PageRankTopK { iterations: 3, k: 8 },
        }
    };

    let started = std::time::Instant::now();
    let rejected = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|scope| -> Result<(), String> {
        let mut handles = Vec::new();
        for r in 0..readers {
            let svc = &svc;
            let rejected = &rejected;
            handles.push(scope.spawn(move || -> Result<(), String> {
                let mut k = r as u64;
                while k < queries as u64 {
                    match svc.run_query(&query_for(k)) {
                        Ok(_) => {}
                        Err(ServeError::Busy { .. }) | Err(ServeError::OutOfMemory { .. }) => {
                            rejected.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            std::thread::yield_now();
                            continue; // retry the same query
                        }
                        Err(e) => return Err(e.to_string()),
                    }
                    k += readers as u64;
                }
                Ok(())
            }));
        }
        // The writer runs on this thread: known-vertex batches, so every
        // commit takes the incremental path (a rebuild would wait for all
        // reader snapshots to drop).
        let mut s = seed ^ 0x57ea11;
        for _ in 0..update_batches {
            let batch: Vec<(u64, u64)> = (0..batch_size)
                .map(|_| {
                    let a = known[(mix(&mut s) % known.len() as u64) as usize];
                    let b = known[(mix(&mut s) % known.len() as u64) as usize];
                    (a, b)
                })
                .collect();
            svc.add_edges(&batch).map_err(|e| e.to_string())?;
        }
        for h in handles {
            h.join().map_err(|_| "reader thread panicked".to_string())??;
        }
        Ok(())
    })?;
    svc.with_writer(|dg| dg.wait_maintenance_idle())
        .map_err(|e| e.to_string())?;
    let elapsed = started.elapsed();
    let stats = svc.stats();
    println!(
        "served {} queries ({} readers) in {:?}: {:.1} queries/sec",
        stats.completed,
        readers,
        elapsed,
        stats.completed as f64 / elapsed.as_secs_f64().max(1e-9)
    );
    println!(
        "admission: {} admitted, {} rejected busy, {} rejected budget ({} retried arrivals), {} errors",
        stats.admitted,
        stats.rejected_busy,
        stats.rejected_budget,
        rejected.load(std::sync::atomic::Ordering::Relaxed),
        stats.errors
    );
    println!(
        "snapshots: max commit lag {} epochs; final epoch {}; over-releases {}",
        stats.max_snapshot_lag,
        svc.current_epoch(),
        nxgraph_storage::global_over_releases()
    );
    Ok(())
}
