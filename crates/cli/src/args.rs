//! Minimal flag parsing (positional arguments + `--flag value` pairs).

use std::collections::HashMap;

/// Usage text shown on any argument error.
pub const USAGE: &str = "\
usage:
  nxgraph-cli generate <rmat|mesh|er> --out <edges.txt> [--scale N] [--edge-factor N] [--seed N] [--vertices N] [--edges N]
  nxgraph-cli prep <edges.txt> <graph-dir> [--intervals P] [--no-reverse] [--name NAME]
                   [--encoding raw|auto|compressed]
  nxgraph-cli info <graph-dir>
  nxgraph-cli compact <graph-dir>
  nxgraph-cli scrub <graph-dir>
  nxgraph-cli pagerank <graph-dir> [--iters N] [--budget-mib N] [--threads N] [--top K]
  nxgraph-cli bfs <graph-dir> --root R [--threads N]
  nxgraph-cli sssp <graph-dir> --root R [--threads N]
  nxgraph-cli wcc <graph-dir> [--threads N]
  nxgraph-cli scc <graph-dir> [--threads N]
  nxgraph-cli hits <graph-dir> [--iters N] [--top K]
  nxgraph-cli serve <graph-dir> [--queries N] [--readers N] [--update-batches N] [--batch-size N]
                    [--max-concurrent N] [--query-budget-mib N] [--total-budget-mib N]
                    [--query-threads N] [--seed N]

engine flags (all algorithms): [--no-prefetch] disables the background
sub-shard/hub prefetch thread (synchronous loads, for debugging/baselines);
[--io-sched] batches each iteration's reads into layout-ordered
submissions on a dedicated I/O thread (results are bitwise-identical);
[--io-queue-depth N] plan entries per scheduler issue window (>= 1;
small values clamp to the scheduler minimum);
[--io-deadline-ms N] hung-I/O watchdog: a scheduled read with no
completion after N ms fails with a typed stall error instead of hanging;
[--direct] opens the graph with O_DIRECT reads where the platform allows
(falls back to buffered reads otherwise)

reliability flags (all graph-reading commands): [--retries N] attempts
per transient-failing read (default 4; 1 disables retrying);
[--retry-backoff-ms M] base backoff between attempts, doubling per retry
(default 1 ms)";

/// Parsed command line: positionals plus flags.
pub struct Args {
    positional: Vec<String>,
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

/// Flags that take no value.
const SWITCHES: &[&str] = &["--no-reverse", "--no-prefetch", "--io-sched", "--direct"];

impl Args {
    /// Parse raw argv (after the subcommand).
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut flags = HashMap::new();
        let mut switches = Vec::new();
        let mut k = 0;
        while k < argv.len() {
            let a = &argv[k];
            if SWITCHES.contains(&a.as_str()) {
                switches.push(a.clone());
            } else if let Some(name) = a.strip_prefix("--") {
                k += 1;
                let value = argv
                    .get(k)
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                flags.insert(name.to_string(), value.clone());
            } else {
                positional.push(a.clone());
            }
            k += 1;
        }
        Ok(Self {
            positional,
            flags,
            switches,
        })
    }

    /// Positional argument `i`, required.
    pub fn pos(&self, i: usize, what: &str) -> Result<&str, String> {
        self.positional
            .get(i)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing {what}"))
    }

    /// Optional flag value parsed to `T`.
    pub fn get<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.flags.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse::<T>()
                .map(Some)
                .map_err(|e| format!("bad --{name} {v:?}: {e}")),
        }
    }

    /// Flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        Ok(self.get(name)?.unwrap_or(default))
    }

    /// Required flag.
    pub fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        self.get(name)?
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// Whether a value-less switch is present.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_mixed_args() {
        let a = Args::parse(&argv(&["edges.txt", "dir", "--intervals", "16", "--no-reverse"]))
            .unwrap();
        assert_eq!(a.pos(0, "input").unwrap(), "edges.txt");
        assert_eq!(a.pos(1, "dir").unwrap(), "dir");
        assert_eq!(a.get_or("intervals", 8u32).unwrap(), 16);
        assert!(a.switch("--no-reverse"));
        assert!(!a.switch("--other"));
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Args::parse(&argv(&["--iters"])).is_err());
    }

    #[test]
    fn bad_parse_is_an_error() {
        let a = Args::parse(&argv(&["--iters", "abc"])).unwrap();
        assert!(a.get::<u32>("iters").is_err());
    }

    #[test]
    fn require_reports_missing() {
        let a = Args::parse(&argv(&[])).unwrap();
        assert!(a.require::<u32>("root").is_err());
        assert!(a.pos(0, "graph-dir").is_err());
    }
}
