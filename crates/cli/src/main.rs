//! `nxgraph-cli` — generate, preprocess and analyse graphs from the shell.
//!
//! ```text
//! nxgraph-cli generate <rmat|mesh|er> --out edges.txt [--scale N] [--edge-factor N] [--seed N]
//! nxgraph-cli prep <edges.txt> <graph-dir> [--intervals P] [--no-reverse] [--name NAME]
//! nxgraph-cli info <graph-dir>
//! nxgraph-cli pagerank <graph-dir> [--iters N] [--budget-mib N] [--threads N] [--top K]
//! nxgraph-cli bfs <graph-dir> --root R [--threads N]
//! nxgraph-cli wcc <graph-dir> [--threads N]
//! nxgraph-cli scc <graph-dir> [--threads N]
//! ```

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("nxgraph-cli: {e}");
            eprintln!("{}", args::USAGE);
            ExitCode::FAILURE
        }
    }
}
