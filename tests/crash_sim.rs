//! Systematic power-loss simulation.
//!
//! A [`CrashDisk`] records every write, remove and rename an update
//! sequence issues. The harness then replays *every* prefix of that
//! stream — including torn final writes — reopens the graph at each cut
//! point, and asserts that it recovers to one of the states the
//! write-boundary contract (see `core::dynamic` module docs) permits:
//! the graph as of the last manifest rename that made it into the
//! prefix, with PageRank bitwise identical to a from-scratch preparation
//! of that state's edge set. No cut may leave an unopenable or
//! wrong-answer graph.

use std::collections::BTreeSet;
use std::sync::Arc;

use nxgraph::core::algo;
use nxgraph::core::dynamic::{Compaction, DynamicConfig, DynamicGraph};
use nxgraph::core::engine::EngineConfig;
use nxgraph::core::prep::{preprocess, PrepConfig};
use nxgraph::core::PreparedGraph;
use nxgraph::storage::{CrashDisk, Disk, MemDisk};

/// Bit-exact PageRank fingerprint (6 iterations, default engine).
fn pagerank_bits(g: &PreparedGraph) -> Vec<u64> {
    let cfg = EngineConfig::default().with_max_iterations(6);
    let (ranks, _) = algo::pagerank(g, 6, &cfg).unwrap();
    ranks.into_iter().map(f64::to_bits).collect()
}

/// Fingerprint of a from-scratch preparation of `edges`.
fn fresh_bits(edges: &[(u64, u64)]) -> Vec<u64> {
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let g = preprocess(edges, &PrepConfig::new("fresh", 3), disk).unwrap();
    pagerank_bits(&g)
}

/// Drive `add_edges` → background fold → scrub against a recording disk
/// and assert recovery at every cut point of the recorded stream.
#[test]
fn every_cut_point_recovers_with_bitwise_identical_pagerank() {
    // 9 vertices / P = 3; the base graph is prepared on the inner disk
    // *before* recording starts, so it forms the crash baseline.
    let base: Vec<(u64, u64)> = (0..40u64).map(|k| (k % 9, (k * 5 + 1) % 9)).collect();
    let inner: Arc<dyn Disk> = Arc::new(MemDisk::new());
    drop(preprocess(&base, &PrepConfig::new("crash", 3), Arc::clone(&inner)).unwrap());

    let crash = Arc::new(CrashDisk::new(inner).unwrap());
    let disk: Arc<dyn Disk> = Arc::<CrashDisk>::clone(&crash);
    let g = PreparedGraph::open(disk).unwrap();
    // Background compaction with the lowest threshold: every batch both
    // appends deltas and signals folds, so the recorded stream interleaves
    // append commits with background fold commits.
    let cfg = DynamicConfig {
        max_deltas: 1,
        max_delta_ratio: f64::INFINITY,
        ..DynamicConfig::background()
    };
    let mut dg = DynamicGraph::with_config(g, cfg).unwrap();

    // Batch sizes differ so every recoverable state has a distinct edge
    // count — the reopen below identifies which commits survived a cut
    // purely from `num_edges`.
    let batch1: Vec<(u64, u64)> = vec![(0, 4), (3, 7), (8, 1)];
    let batch2: Vec<(u64, u64)> = vec![(2, 6), (5, 0), (1, 8), (7, 7), (4, 2)];
    let mut states: Vec<(u64, Vec<(u64, u64)>)> = Vec::new();
    let mut edges = base.clone();
    states.push((edges.len() as u64, edges.clone()));
    for batch in [&batch1, &batch2] {
        assert!(!dg.add_edges(batch).unwrap().rebuilt);
        // Quiesce between batches so fold commits land in the stream too.
        dg.wait_maintenance_idle().unwrap();
        edges.extend(batch.iter().copied());
        states.push((edges.len() as u64, edges.clone()));
    }
    let report = dg.scrub().unwrap();
    assert!(report.is_clean(), "scrub flagged a healthy graph: {report:?}");
    assert!(report.files_scanned > 0 && report.bytes_scanned > 0);
    drop(dg); // joins the maintenance thread; the op stream is final

    let expected: Vec<(u64, Vec<u64>)> = states
        .iter()
        .map(|(n, edges)| (*n, fresh_bits(edges)))
        .collect();

    let cuts = crash.cut_points();
    assert!(
        cuts.len() > 20,
        "the sequence must expose more than 20 cut points, got {}",
        cuts.len()
    );
    let mut observed: BTreeSet<u64> = BTreeSet::new();
    for cut in cuts {
        let replayed = crash.replay(cut).unwrap();
        let disk: Arc<dyn Disk> = Arc::new(replayed);
        let g = PreparedGraph::open(Arc::clone(&disk))
            .unwrap_or_else(|e| panic!("reopen failed at {cut:?}: {e}"));
        let n = g.num_edges();
        let (_, want) = expected
            .iter()
            .find(|(count, _)| *count == n)
            .unwrap_or_else(|| panic!("cut {cut:?} recovered to unknown edge count {n}"));
        assert_eq!(
            &pagerank_bits(&g),
            want,
            "cut {cut:?}: recovered graph (edge count {n}) diverged from fresh prep"
        );
        observed.insert(n);
    }
    // The sweep must have visited every commit boundary: the pristine
    // base (cut before anything), both batch commits, and the full state.
    for (n, _) in &expected {
        assert!(observed.contains(n), "no cut point recovered the {n}-edge state");
    }
}

/// Same sweep across an *inline* compaction sequence (fold inside the
/// append commit) — the write-boundary contract is mode-independent.
#[test]
fn inline_fold_commits_recover_at_every_cut_point() {
    let base: Vec<(u64, u64)> = (0..30u64).map(|k| (k % 9, (k * 7 + 2) % 9)).collect();
    let inner: Arc<dyn Disk> = Arc::new(MemDisk::new());
    drop(preprocess(&base, &PrepConfig::new("crash-inline", 3), Arc::clone(&inner)).unwrap());

    let crash = Arc::new(CrashDisk::new(inner).unwrap());
    let disk: Arc<dyn Disk> = Arc::<CrashDisk>::clone(&crash);
    let g = PreparedGraph::open(disk).unwrap();
    let cfg = DynamicConfig {
        max_deltas: 1, // every append folds inline instead
        max_delta_ratio: f64::INFINITY,
        compaction: Compaction::Inline,
        ..DynamicConfig::default()
    };
    let mut dg = DynamicGraph::with_config(g, cfg).unwrap();
    let batch: Vec<(u64, u64)> = vec![(0, 1), (4, 4), (8, 2), (3, 6)];
    dg.add_edges(&batch).unwrap();
    dg.add_edges(&batch).unwrap(); // second commit folds the chains
    drop(dg);

    let mut edges = base.clone();
    edges.extend(&batch);
    let mid = fresh_bits(&edges);
    edges.extend(&batch);
    let full = fresh_bits(&edges);
    let expected = [
        (base.len() as u64, fresh_bits(&base)),
        ((base.len() + batch.len()) as u64, mid),
        ((base.len() + 2 * batch.len()) as u64, full),
    ];

    let cuts = crash.cut_points();
    assert!(cuts.len() > 20, "got {} cut points", cuts.len());
    for cut in cuts {
        let disk: Arc<dyn Disk> = Arc::new(crash.replay(cut).unwrap());
        let g = PreparedGraph::open(disk)
            .unwrap_or_else(|e| panic!("reopen failed at {cut:?}: {e}"));
        let n = g.num_edges();
        let (_, want) = expected
            .iter()
            .find(|(count, _)| *count == n)
            .unwrap_or_else(|| panic!("cut {cut:?} recovered to unknown edge count {n}"));
        assert_eq!(&pagerank_bits(&g), want, "cut {cut:?} diverged");
    }
}

/// After a crash, the scrubber classifies the leftovers as orphans (never
/// as corruption) and a compact pass reclaims them.
#[test]
fn crash_leftovers_scrub_clean_and_compact_away() {
    let base: Vec<(u64, u64)> = (0..30u64).map(|k| (k % 9, (k * 4 + 3) % 9)).collect();
    let inner: Arc<dyn Disk> = Arc::new(MemDisk::new());
    drop(preprocess(&base, &PrepConfig::new("crash-gc", 3), Arc::clone(&inner)).unwrap());
    let crash = Arc::new(CrashDisk::new(inner).unwrap());
    let disk: Arc<dyn Disk> = Arc::<CrashDisk>::clone(&crash);
    let mut dg = DynamicGraph::with_config(
        PreparedGraph::open(disk).unwrap(),
        DynamicConfig {
            max_deltas: 1,
            max_delta_ratio: f64::INFINITY,
            ..DynamicConfig::background()
        },
    )
    .unwrap();
    dg.add_edges(&[(0, 3), (5, 5), (7, 1)]).unwrap();
    dg.wait_maintenance_idle().unwrap();
    drop(dg);

    for cut in crash.cut_points() {
        let disk: Arc<dyn Disk> = Arc::new(crash.replay(cut).unwrap());
        // Whatever the cut stranded must read as *unreferenced* (orphans),
        // never as damage to the committed graph…
        let report = nxgraph::core::maintain::scrub(disk.as_ref()).unwrap();
        assert!(report.is_clean(), "cut {cut:?}: scrub flagged {report:?}");
        // …and compact must leave a minimal, still-correct store.
        let g = PreparedGraph::open(Arc::clone(&disk)).unwrap();
        let before = pagerank_bits(&g);
        let mut dg = DynamicGraph::new(g).unwrap();
        dg.compact().unwrap();
        let after = nxgraph::core::maintain::scrub(disk.as_ref()).unwrap();
        assert!(after.is_clean());
        assert_eq!(after.orphans, 0, "cut {cut:?}: compact left orphans behind");
        assert_eq!(pagerank_bits(dg.graph()), before, "cut {cut:?}: compact changed results");
    }
}
