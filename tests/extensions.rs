//! Integration tests for the extension features (SSSP, HITS, personalised
//! PageRank, k-core, dynamic updates) across update strategies — the same
//! strategy-equivalence guarantees the core algorithms enjoy.

use std::sync::Arc;

use nxgraph::core::algo::{self, ppr::PersonalizedPageRank, sssp};
use nxgraph::core::dynamic::DynamicGraph;
use nxgraph::core::engine::{self, EngineConfig, Strategy};
use nxgraph::core::prep::{preprocess, PrepConfig};
use nxgraph::core::reference;
use nxgraph::core::PreparedGraph;
use nxgraph::graphgen::rmat;
use nxgraph::storage::{Disk, MemDisk};

fn workload(scale: u32, ef: u32, seed: u64) -> PreparedGraph {
    let raw: Vec<(u64, u64)> = rmat::generate(&rmat::RmatConfig::graph500(scale, ef, seed))
        .into_iter()
        .map(|e| (e.src, e.dst))
        .collect();
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    preprocess(&raw, &PrepConfig::new("ext", 5), disk).unwrap()
}

fn strategies(n: u64) -> Vec<(Strategy, u64)> {
    vec![
        (Strategy::Spu, u64::MAX),
        (Strategy::Dpu, 0),
        (Strategy::Mpu, 4 * n + n * 8),
    ]
}

#[test]
fn sssp_agrees_across_strategies() {
    let g = workload(8, 4, 31);
    let n = g.num_vertices() as u64;
    let w = sssp::hash_weights(0.5, 3.0);
    let mut baseline: Option<Vec<f64>> = None;
    for (strategy, budget) in strategies(n) {
        let prog = algo::Sssp::new(0, Arc::clone(&w));
        let cfg = EngineConfig::default()
            .with_strategy(strategy)
            .with_budget(budget)
            .with_max_iterations(g.num_vertices() as usize + 1);
        let (dist, _) = engine::run(&g, &prog, &cfg).unwrap();
        match &baseline {
            None => baseline = Some(dist),
            Some(b) => {
                for (x, y) in dist.iter().zip(b) {
                    if y.is_finite() {
                        assert!((x - y).abs() < 1e-9, "{strategy:?}: {x} vs {y}");
                    } else {
                        assert!(x.is_infinite());
                    }
                }
            }
        }
    }
}

#[test]
fn ppr_agrees_across_strategies() {
    let g = workload(8, 6, 32);
    let n = g.num_vertices() as u64;
    let mut baseline: Option<Vec<f64>> = None;
    for (strategy, budget) in strategies(n) {
        let prog = PersonalizedPageRank::new([0u32, 3], Arc::clone(g.out_degrees()));
        let cfg = EngineConfig::default()
            .with_strategy(strategy)
            .with_budget(budget)
            .with_max_iterations(8);
        let (r, _) = engine::run(&g, &prog, &cfg).unwrap();
        match &baseline {
            None => baseline = Some(r),
            Some(b) => {
                for (x, y) in r.iter().zip(b) {
                    assert!((x - y).abs() < 1e-10, "{strategy:?}");
                }
            }
        }
    }
}

#[test]
fn kcore_agrees_across_strategies() {
    // Symmetrised random graph.
    let raw_base: Vec<(u64, u64)> = rmat::generate(&rmat::RmatConfig::graph500(8, 4, 33))
        .into_iter()
        .flat_map(|e| [(e.src, e.dst), (e.dst, e.src)])
        .collect();
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let g = preprocess(&raw_base, &PrepConfig::new("kc", 4), disk).unwrap();
    let n = g.num_vertices() as u64;
    let mut baseline: Option<Vec<u32>> = None;
    for (strategy, budget) in strategies(n) {
        let cfg = EngineConfig::default()
            .with_strategy(strategy)
            .with_budget(budget);
        let (flags, _) = algo::kcore(&g, 4, &cfg).unwrap();
        match &baseline {
            None => baseline = Some(flags),
            Some(b) => assert_eq!(&flags, b, "{strategy:?}"),
        }
    }
    // The agreed-upon result must also match the peeling oracle.
    let mut idx: Vec<u64> = raw_base.iter().flat_map(|&(s, d)| [s, d]).collect();
    idx.sort_unstable();
    idx.dedup();
    let dense: Vec<(u32, u32)> = raw_base
        .iter()
        .map(|&(s, d)| {
            (
                idx.binary_search(&s).unwrap() as u32,
                idx.binary_search(&d).unwrap() as u32,
            )
        })
        .collect();
    let expect = reference::kcore(g.num_vertices(), &dense, 4);
    assert_eq!(baseline.unwrap(), expect);
}

#[test]
fn hits_is_deterministic_and_strategy_independent() {
    let g = workload(8, 5, 34);
    let a = algo::hits(&g, 6, &EngineConfig::default()).unwrap();
    let b = algo::hits(&g, 6, &EngineConfig::default().with_strategy(Strategy::Dpu)).unwrap();
    for (x, y) in a.authorities.iter().zip(&b.authorities) {
        assert!((x - y).abs() < 1e-10);
    }
    for (x, y) in a.hubs.iter().zip(&b.hubs) {
        assert!((x - y).abs() < 1e-10);
    }
}

#[test]
fn dynamic_delta_log_roundtrips_on_real_files() {
    use nxgraph::core::dynamic::{DynamicConfig, DynamicGraph};
    use nxgraph::storage::OsDisk;

    // Chains on a directory of real files: append, reopen cold, fold,
    // reopen again — results stay put across process-like boundaries.
    let dir = std::env::temp_dir().join(format!("nxgraph-delta-os-{}", std::process::id()));
    let raw: Vec<(u64, u64)> = rmat::generate(&rmat::RmatConfig::graph500(8, 4, 77))
        .into_iter()
        .map(|e| (e.src, e.dst))
        .collect();
    let disk: Arc<dyn Disk> = Arc::new(OsDisk::new(&dir).unwrap());
    let g = preprocess(&raw, &PrepConfig::new("os-delta", 4), Arc::clone(&disk)).unwrap();
    let mut dg = DynamicGraph::with_config(g, DynamicConfig::never_compact()).unwrap();
    let known = dg.graph().load_reverse_mapping().unwrap();
    let extra: Vec<(u64, u64)> = (0..30)
        .map(|k| (known[(k * 3) % known.len()], known[(k * 11 + 5) % known.len()]))
        .collect();
    let stats = dg.add_edges(&extra).unwrap();
    assert!(stats.deltas_appended > 0);
    drop(dg);

    // Cold reopen sees the chain and merges it.
    let reopened = PreparedGraph::open(Arc::clone(&disk)).unwrap();
    assert!(reopened.manifest().chains().unwrap().iter().any(|c| c.3.deltas > 0));
    let cfg = EngineConfig::default().with_max_iterations(5);
    let (want, _) = algo::pagerank(&reopened, 5, &cfg).unwrap();

    // Fold, reopen again: chains gone, PageRank bit-identical.
    let mut dg = DynamicGraph::new(reopened).unwrap();
    assert!(dg.compact().unwrap().cells_folded > 0);
    drop(dg);
    let compacted = PreparedGraph::open(Arc::clone(&disk)).unwrap();
    assert!(compacted.manifest().chains().unwrap().iter().all(|c| c.3.deltas == 0));
    let (got, _) = algo::pagerank(&compacted, 5, &cfg).unwrap();
    assert_eq!(
        got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dynamic_commits_then_all_algorithms_run() {
    let g = workload(8, 4, 35);
    let mut dg = DynamicGraph::new(g).unwrap();
    // Add some edges among existing vertices (via reconstructed indices).
    let known = dg.graph().load_reverse_mapping().unwrap();
    let extra: Vec<(u64, u64)> = (0..20)
        .map(|k| (known[k % known.len()], known[(k * 7 + 3) % known.len()]))
        .collect();
    let stats = dg.add_edges(&extra).unwrap();
    assert!(!stats.rebuilt);

    let cfg = EngineConfig::default();
    let (ranks, _) = algo::pagerank(dg.graph(), 5, &cfg).unwrap();
    assert_eq!(ranks.len(), dg.graph().num_vertices() as usize);
    let (depths, _) = algo::bfs(dg.graph(), 0, &cfg).unwrap();
    assert_eq!(depths[0], 0);
    let scc = algo::scc(dg.graph(), &cfg).unwrap();
    assert_eq!(scc.labels.len(), depths.len());
}
