//! Snapshot-isolated concurrent serving, end to end through the facade.
//!
//! The contracts under test:
//!
//! * a reader pinned at generation G can stream its sub-shard chains
//!   while background folds and `refresh()` supersede G underneath it —
//!   no `NotFound`, no divergence (the pending-sweep queue holds the old
//!   files alive);
//! * no file is swept while *any* snapshot references its generation —
//!   asserted through the pin refcount, not timing;
//! * queries pinned at G are bitwise-identical before, during and after
//!   a compaction that supersedes G, across SPU, DPU and MPU, and match
//!   a fresh one-shot preparation of the same edges;
//! * admission control rejects with typed errors (`Busy`,
//!   `OutOfMemory`) and a concurrent read/update stream completes with
//!   zero query errors.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use nxgraph::core::algo;
use nxgraph::core::dynamic::{DynamicConfig, DynamicGraph};
use nxgraph::core::engine::{EngineConfig, Strategy};
use nxgraph::core::prep::{preprocess, PrepConfig};
use nxgraph::core::{GraphService, PreparedGraph, Query, ServeConfig, ServeError};
use nxgraph::graphgen::rmat::{self, RmatConfig};
use nxgraph::storage::{Disk, MemDisk};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// R-MAT base edges, a background-maintenance service over them, and the
/// original vertex ids (so update batches never force a rebuild).
fn fixture(scale: u32, seed: u64) -> (Vec<(u64, u64)>, GraphService, Vec<u64>) {
    let raw: Vec<(u64, u64)> = rmat::generate(&RmatConfig::graph500(scale, 6, seed))
        .into_iter()
        .map(|e| (e.src, e.dst))
        .collect();
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let base = preprocess(&raw, &PrepConfig::new("serve-it", 4), Arc::clone(&disk)).unwrap();
    let known = base.load_reverse_mapping().unwrap();
    let dg = DynamicGraph::with_config(base, DynamicConfig::background()).unwrap();
    let svc = GraphService::new(dg, ServeConfig::default()).unwrap();
    (raw, svc, known)
}

/// An update batch over already-known vertices.
fn batch(known: &[u64], rng: &mut StdRng, len: usize) -> Vec<(u64, u64)> {
    (0..len)
        .map(|_| {
            let s = known[rng.random_range(0..known.len())];
            let d = known[rng.random_range(0..known.len())];
            (s, d)
        })
        .collect()
}

/// PageRank bits under one explicit strategy — the isolation comparator.
fn strategy_bits(g: &PreparedGraph, strategy: Strategy, budget: u64) -> Vec<u64> {
    let cfg = EngineConfig::default()
        .with_strategy(strategy)
        .with_budget(budget)
        .with_threads(2)
        .with_max_iterations(5);
    let (ranks, _) = algo::pagerank(g, 5, &cfg).unwrap();
    ranks.into_iter().map(f64::to_bits).collect()
}

/// The three paper strategies with budgets that force each one: SPU
/// (everything resident), DPU (nothing resident), MPU (half resident).
fn strategy_cases(n: u64) -> [(Strategy, u64); 3] {
    [
        (Strategy::Spu, u64::MAX),
        (Strategy::Dpu, 0),
        (Strategy::Mpu, 4 * n + n * 8),
    ]
}

// Satellite: a reader pinned before the stream keeps streaming its
// generation's sub-shard chains (full PageRank touches every cell) while
// the writer commits, background maintenance folds, and `refresh()`
// runs concurrently. A swept file would surface as a NotFound engine
// error; divergence would show up in the bit comparison.
#[test]
fn pinned_reader_streams_across_concurrent_fold_and_refresh() {
    let (_raw, svc, known) = fixture(8, 21);
    let snap = svc.snapshot().unwrap();
    let e0 = snap.epoch();
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let snap = &snap;
        let stop = &stop;
        scope.spawn(move || {
            let cfg = EngineConfig::default().with_threads(1).with_max_iterations(3);
            let mut last: Option<Vec<u64>> = None;
            loop {
                let (ranks, _) = algo::pagerank(snap.graph(), 3, &cfg)
                    .expect("pinned read hit a swept or missing file");
                let bits: Vec<u64> = ranks.iter().map(|v| v.to_bits()).collect();
                if let Some(prev) = &last {
                    assert_eq!(prev, &bits, "pinned generation diverged mid-stream");
                }
                last = Some(bits);
                if stop.load(Ordering::Acquire) {
                    break;
                }
            }
        });
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..6 {
            svc.add_edges(&batch(&known, &mut rng, 64)).unwrap();
            svc.with_writer(|dg| {
                dg.wait_maintenance_idle().unwrap();
                dg.refresh().unwrap();
            });
        }
        stop.store(true, Ordering::Release);
    });
    // The writer moved on; the snapshot is the only pin left at e0.
    assert!(svc.current_epoch() > e0);
    assert_eq!(svc.pin_count(e0), 1);
    assert!(snap.lag() > 0);
    drop(snap);
    assert_eq!(svc.pin_count(e0), 0);
    let drained = svc.with_writer(|dg| {
        dg.refresh().unwrap();
        dg.pending_sweeps() == 0
    });
    assert!(drained, "sweep queue must drain once the last pin drops");
}

// Acceptance: no file is swept while any snapshot references its
// generation — asserted via the refcount, one pin at a time.
#[test]
fn no_sweep_while_any_snapshot_pins_the_generation() {
    let (_raw, svc, known) = fixture(7, 5);
    let s1 = svc.snapshot().unwrap();
    let s2 = svc.snapshot().unwrap();
    let e0 = s1.epoch();
    assert_eq!(s2.epoch(), e0);
    // Owner + two snapshots: the writer has not refreshed off e0 yet.
    assert_eq!(svc.pin_count(e0), 3);

    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..3 {
        svc.add_edges(&batch(&known, &mut rng, 48)).unwrap();
    }
    svc.with_writer(|dg| {
        dg.wait_maintenance_idle().unwrap();
        dg.compact().unwrap();
    });

    let bits = strategy_bits(s1.graph(), Strategy::Spu, u64::MAX);
    let pending = svc.with_writer(|dg| {
        dg.refresh().unwrap();
        dg.pending_sweeps()
    });
    assert!(
        pending > 0,
        "superseded files must queue, not sweep, while generation {e0} is pinned"
    );

    drop(s1);
    assert_eq!(svc.pin_count(e0), 1);
    let pending = svc.with_writer(|dg| {
        dg.refresh().unwrap();
        dg.pending_sweeps()
    });
    assert!(pending > 0, "one pin is enough to hold the generation");
    // The surviving pin still answers, identically.
    assert_eq!(strategy_bits(s2.graph(), Strategy::Spu, u64::MAX), bits);

    drop(s2);
    assert_eq!(svc.pin_count(e0), 0);
    let pending = svc.with_writer(|dg| {
        dg.refresh().unwrap();
        dg.pending_sweeps()
    });
    assert_eq!(pending, 0, "last unpin must release the whole generation");
}

// Satellite: a snapshot pinned at generation G answers bitwise-
// identically before, during and after a compaction that supersedes G,
// under each of SPU, DPU and MPU — and matches a fresh one-shot
// preparation of the same base edges.
#[test]
fn pinned_generation_is_bitwise_isolated_across_strategies() {
    let (raw, svc, known) = fixture(8, 33);
    let snap = svc.snapshot().unwrap();
    let n = snap.graph().num_vertices() as u64;
    let cases = strategy_cases(n);
    let before: Vec<Vec<u64>> = cases
        .iter()
        .map(|&(s, b)| strategy_bits(snap.graph(), s, b))
        .collect();

    // During: re-run one strategy after each commit while chains grow
    // and background folds land.
    let mut rng = StdRng::seed_from_u64(17);
    for step in 0..4usize {
        svc.add_edges(&batch(&known, &mut rng, 64)).unwrap();
        let (s, b) = cases[step % cases.len()];
        assert_eq!(
            strategy_bits(snap.graph(), s, b),
            before[step % cases.len()],
            "{s:?} diverged during the update stream"
        );
    }

    // After: an explicit compaction supersedes every file of G.
    svc.with_writer(|dg| {
        dg.wait_maintenance_idle().unwrap();
        dg.compact().unwrap();
    });
    for (k, &(s, b)) in cases.iter().enumerate() {
        assert_eq!(
            strategy_bits(snap.graph(), s, b),
            before[k],
            "{s:?} diverged after compaction superseded the pinned generation"
        );
    }

    // Ground truth: a fresh preparation of the base edge set.
    let fresh_disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let fresh = preprocess(&raw, &PrepConfig::new("serve-it", 4), fresh_disk).unwrap();
    for (k, &(s, b)) in cases.iter().enumerate() {
        assert_eq!(
            strategy_bits(&fresh, s, b),
            before[k],
            "{s:?} on the pinned snapshot disagrees with a fresh prep"
        );
    }
}

// Acceptance: a concurrent read/update stream through the service
// completes with zero query errors, and both rejection paths surface as
// typed errors through the facade.
#[test]
fn concurrent_stream_is_error_free_and_rejections_are_typed() {
    let (_raw, svc, known) = fixture(7, 9);
    let n = svc.snapshot().unwrap().graph().num_vertices();
    const PER_READER: u64 = 8;
    std::thread::scope(|scope| {
        for r in 0..2u32 {
            let svc = &svc;
            scope.spawn(move || {
                for k in 0..PER_READER {
                    let q = match (u64::from(r) + k) % 3 {
                        0 => Query::Bfs {
                            root: k as u32 % n,
                            target: (k as u32 + 1) % n,
                        },
                        1 => Query::Sssp {
                            root: k as u32 % n,
                            target: (k as u32 + 3) % n,
                        },
                        _ => Query::PageRankTopK {
                            iterations: 3,
                            k: 4,
                        },
                    };
                    loop {
                        match svc.run_query(&q) {
                            Ok(_) => break,
                            Err(ServeError::Busy { .. }) => std::thread::yield_now(),
                            Err(e) => panic!("query failed: {e}"),
                        }
                    }
                }
            });
        }
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2 {
            svc.add_edges(&batch(&known, &mut rng, 32)).unwrap();
        }
    });
    let stats = svc.stats();
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.completed, 2 * PER_READER);
    assert_eq!(svc.in_flight(), 0);
    assert_eq!(svc.budget().used(), 0, "every lease returned to the pool");

    // Busy: deterministic via an operator hold on every slot.
    let hold = svc.hold_slots(ServeConfig::default().max_concurrent).unwrap();
    let err = svc
        .run_query(&Query::Bfs { root: 0, target: 1 })
        .unwrap_err();
    assert!(matches!(err, ServeError::Busy { .. }), "got {err}");
    drop(hold);

    // OutOfMemory: a service whose shared pool cannot cover one carve.
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let raw = vec![(0u64, 1u64), (1, 2), (2, 0)];
    let base = preprocess(&raw, &PrepConfig::new("serve-oom", 2), disk).unwrap();
    let dg = DynamicGraph::with_config(base, DynamicConfig::background()).unwrap();
    let tight = GraphService::new(
        dg,
        ServeConfig {
            query_budget: 1 << 20,
            total_budget: 1 << 10,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let err = tight
        .run_query(&Query::Bfs { root: 0, target: 1 })
        .unwrap_err();
    assert!(matches!(err, ServeError::OutOfMemory { .. }), "got {err}");
    assert_eq!(tight.in_flight(), 0, "failed carve must release its slot");
}
