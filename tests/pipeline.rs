//! End-to-end pipeline tests: generate → preprocess → run every engine →
//! compare against the in-memory oracles.

use std::sync::Arc;

use nxgraph::core::algo::{self, pagerank::PageRank, ppr::PersonalizedPageRank, sssp};
use nxgraph::core::engine::{self, choose_strategy, EngineConfig, Strategy, SyncMode};
use nxgraph::core::prep::{preprocess, PrepConfig};
use nxgraph::core::reference;
use nxgraph::core::PreparedGraph;
use nxgraph::graphgen::{er, rmat};
use nxgraph::storage::{Disk, EncodingPolicy, MemDisk};

fn prepare(raw: &[(u64, u64)], p: u32) -> PreparedGraph {
    prepare_enc(raw, p, EncodingPolicy::Raw)
}

fn prepare_enc(raw: &[(u64, u64)], p: u32, encoding: EncodingPolicy) -> PreparedGraph {
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let cfg = PrepConfig::new("pipeline", p).with_encoding(encoding);
    preprocess(raw, &cfg, disk).unwrap()
}

fn dense_edges(g: &PreparedGraph, raw: &[(u64, u64)]) -> Vec<(u32, u32)> {
    // Degreeing assigns ids by ascending index; recompute the mapping.
    let mut idx: Vec<u64> = raw.iter().flat_map(|&(s, d)| [s, d]).collect();
    idx.sort_unstable();
    idx.dedup();
    assert_eq!(idx.len(), g.num_vertices() as usize);
    raw.iter()
        .map(|&(s, d)| {
            (
                idx.binary_search(&s).unwrap() as u32,
                idx.binary_search(&d).unwrap() as u32,
            )
        })
        .collect()
}

fn rmat_raw(scale: u32, ef: u32, seed: u64) -> Vec<(u64, u64)> {
    rmat::generate(&rmat::RmatConfig::graph500(scale, ef, seed))
        .into_iter()
        .map(|e| (e.src, e.dst))
        .collect()
}

#[test]
fn all_strategies_and_sync_modes_agree_on_pagerank() {
    let raw = rmat_raw(9, 8, 11);
    let g = prepare(&raw, 6);
    let edges = dense_edges(&g, &raw);
    let expect = reference::pagerank(g.num_vertices(), &edges, g.out_degrees(), 10);

    // MPU budget forcing half-resident intervals.
    let n = g.num_vertices() as u64;
    let mpu_budget = 4 * n + n * 8;

    for (strategy, budget) in [
        (Strategy::Spu, u64::MAX),
        (Strategy::Dpu, 0),
        (Strategy::Mpu, mpu_budget),
        (Strategy::Auto, u64::MAX),
        (Strategy::Auto, mpu_budget),
        (Strategy::Auto, 0),
    ] {
        for sync in [SyncMode::Callback, SyncMode::Lock] {
            let cfg = EngineConfig::default()
                .with_strategy(strategy)
                .with_budget(budget)
                .with_sync(sync)
                .with_max_iterations(10);
            let (vals, stats) = algo::pagerank(&g, 10, &cfg).unwrap();
            assert_eq!(stats.iterations, 10);
            for (v, (a, b)) in vals.iter().zip(&expect).enumerate() {
                assert!(
                    (a - b).abs() < 1e-10,
                    "{strategy:?}/{sync:?} budget {budget}: vertex {v}: {a} vs {b}"
                );
            }
        }
    }
}

#[test]
fn auto_strategy_resolves_as_documented() {
    let raw = rmat_raw(8, 6, 3);
    let g = prepare(&raw, 4);
    let n = g.num_vertices() as u64;
    let cases = [
        (u64::MAX, Strategy::Spu),
        (4 * n + n * 8, Strategy::Mpu),
        // The degree table alone eats a 4n budget: still DPU.
        (4 * n, Strategy::Dpu),
        (0, Strategy::Dpu),
    ];
    for (budget, want) in cases {
        let cfg = EngineConfig::default()
            .with_budget(budget)
            .with_max_iterations(2);
        let (_, stats) = algo::pagerank(&g, 2, &cfg).unwrap();
        assert_eq!(stats.strategy, want, "budget {budget}");
    }
}

#[test]
fn bfs_matches_oracle_across_strategies() {
    let raw = rmat_raw(9, 4, 7);
    let g = prepare(&raw, 5);
    let edges = dense_edges(&g, &raw);
    let expect = reference::bfs(g.num_vertices(), &edges, 0);
    let n = g.num_vertices() as u64;
    for (strategy, budget) in [
        (Strategy::Spu, u64::MAX),
        (Strategy::Dpu, 0),
        (Strategy::Mpu, 4 * n + n * 4),
    ] {
        let cfg = EngineConfig::default()
            .with_strategy(strategy)
            .with_budget(budget);
        let (depths, _) = algo::bfs(&g, 0, &cfg).unwrap();
        assert_eq!(depths, expect, "{strategy:?}");
    }
}

#[test]
fn wcc_matches_union_find() {
    let raw = er::generate(300, 500, 13)
        .into_iter()
        .map(|e| (e.src, e.dst))
        .collect::<Vec<_>>();
    let g = prepare(&raw, 7);
    let edges = dense_edges(&g, &raw);
    let expect = reference::wcc(g.num_vertices(), &edges);
    for strategy in [Strategy::Spu, Strategy::Dpu] {
        let cfg = EngineConfig::default()
            .with_strategy(strategy)
            .with_budget(if strategy == Strategy::Dpu { 0 } else { u64::MAX });
        let (labels, _) = algo::wcc(&g, &cfg).unwrap();
        assert_eq!(labels, expect, "{strategy:?}");
    }
}

#[test]
fn scc_matches_tarjan() {
    let raw = rmat_raw(8, 3, 19);
    let g = prepare(&raw, 5);
    let edges = dense_edges(&g, &raw);
    let expect = reference::scc(g.num_vertices(), &edges);
    let out = algo::scc(&g, &EngineConfig::default()).unwrap();
    assert_eq!(out.labels, expect);
}

#[test]
fn results_invariant_to_partitioning_and_threads() {
    let raw = rmat_raw(8, 8, 23);
    let mut baseline: Option<Vec<f64>> = None;
    for p in [1u32, 3, 8, 16] {
        let g = prepare(&raw, p);
        for threads in [1usize, 2, 8] {
            let cfg = EngineConfig::default()
                .with_threads(threads)
                .with_max_iterations(6);
            let (vals, _) = algo::pagerank(&g, 6, &cfg).unwrap();
            match &baseline {
                None => baseline = Some(vals),
                Some(b) => {
                    for (x, y) in vals.iter().zip(b) {
                        assert!((x - y).abs() < 1e-10, "P={p} threads={threads}");
                    }
                }
            }
        }
    }
}

#[test]
fn pagerank_converges_with_epsilon() {
    // A strongly connected cycle converges exactly; epsilon termination
    // must stop before the iteration cap.
    let raw: Vec<(u64, u64)> = (0..50u64).map(|v| (v, (v + 1) % 50)).collect();
    let g = prepare(&raw, 4);
    let prog = PageRank::new(g.num_vertices(), Arc::clone(g.out_degrees()))
        .with_epsilon(1e-14);
    let cfg = EngineConfig::default().with_max_iterations(500);
    let (vals, stats) = engine::run(&g, &prog, &cfg).unwrap();
    assert!(stats.iterations < 500, "should converge early");
    // Uniform stationary distribution on a cycle.
    for v in &vals {
        assert!((v - 1.0 / 50.0).abs() < 1e-9);
    }
}

// ---------------------------------------------------------------------------
// Full oracle matrix: every algorithm × {SPU, DPU, MPU} × both sync modes,
// on an R-MAT and an Erdős–Rényi graph, validated against the
// `reference` oracles.
// ---------------------------------------------------------------------------

/// A named matrix workload: prepared graph plus its dense edge list.
type MatrixGraph = (&'static str, PreparedGraph, Vec<(u32, u32)>);

/// The two workload graphs of the matrix, with their dense edge lists.
fn matrix_graphs() -> Vec<MatrixGraph> {
    let rmat = rmat_raw(8, 6, 41);
    let er: Vec<(u64, u64)> = er::generate(250, 900, 42)
        .into_iter()
        .map(|e| (e.src, e.dst))
        .collect();
    [("rmat", rmat), ("er", er)]
        .into_iter()
        .map(|(name, raw)| {
            let g = prepare(&raw, 5);
            let edges = dense_edges(&g, &raw);
            (name, g, edges)
        })
        .collect()
}

/// Explicit SPU, DPU and MPU configs crossed with both sync modes.
/// `value_size` is the algorithm's per-vertex attribute width, which sets
/// the half-resident MPU budget.
fn matrix_configs(n: u64, value_size: u64) -> Vec<(String, EngineConfig)> {
    let mut out = Vec::new();
    for (strategy, budget) in [
        (Strategy::Spu, u64::MAX),
        (Strategy::Dpu, 0),
        (Strategy::Mpu, 4 * n + n * value_size),
    ] {
        for sync in [SyncMode::Callback, SyncMode::Lock] {
            let cfg = EngineConfig::default()
                .with_strategy(strategy)
                .with_budget(budget)
                .with_sync(sync)
                .with_threads(3);
            out.push((format!("{strategy:?}/{sync:?}"), cfg));
        }
    }
    out
}

fn assert_close(got: &[f64], want: &[f64], tol: f64, label: &str) {
    for (v, (a, b)) in got.iter().zip(want).enumerate() {
        if b.is_finite() {
            assert!((a - b).abs() < tol, "{label}: vertex {v}: {a} vs {b}");
        } else {
            assert!(!a.is_finite(), "{label}: vertex {v}: {a} vs {b}");
        }
    }
}

#[test]
fn matrix_pagerank_matches_oracle() {
    for (gname, g, edges) in matrix_graphs() {
        let expect = reference::pagerank(g.num_vertices(), &edges, g.out_degrees(), 6);
        for (cname, cfg) in matrix_configs(g.num_vertices() as u64, 8) {
            let (vals, _) = algo::pagerank(&g, 6, &cfg.with_max_iterations(6)).unwrap();
            assert_close(&vals, &expect, 1e-9, &format!("{gname}/{cname}"));
        }
    }
}

#[test]
fn matrix_bfs_matches_oracle() {
    for (gname, g, edges) in matrix_graphs() {
        let expect = reference::bfs(g.num_vertices(), &edges, 0);
        for (cname, cfg) in matrix_configs(g.num_vertices() as u64, 4) {
            let (depths, _) = algo::bfs(&g, 0, &cfg).unwrap();
            assert_eq!(depths, expect, "{gname}/{cname}");
        }
    }
}

#[test]
fn matrix_sssp_matches_oracle() {
    let w = sssp::hash_weights(0.5, 2.5);
    for (gname, g, edges) in matrix_graphs() {
        let expect = reference::sssp(g.num_vertices(), &edges, 0, |s, d| w(s, d));
        for (cname, cfg) in matrix_configs(g.num_vertices() as u64, 8) {
            let prog = algo::Sssp::new(0, Arc::clone(&w));
            let cfg = cfg.with_max_iterations(g.num_vertices() as usize + 1);
            let (dist, _) = engine::run(&g, &prog, &cfg).unwrap();
            assert_close(&dist, &expect, 1e-9, &format!("{gname}/{cname}"));
        }
    }
}

#[test]
fn matrix_wcc_matches_oracle() {
    for (gname, g, edges) in matrix_graphs() {
        let expect = reference::wcc(g.num_vertices(), &edges);
        for (cname, cfg) in matrix_configs(g.num_vertices() as u64, 4) {
            let (labels, _) = algo::wcc(&g, &cfg).unwrap();
            assert_eq!(labels, expect, "{gname}/{cname}");
        }
    }
}

#[test]
fn matrix_scc_matches_oracle() {
    for (gname, g, edges) in matrix_graphs() {
        let expect = reference::scc(g.num_vertices(), &edges);
        for (cname, cfg) in matrix_configs(g.num_vertices() as u64, 4) {
            let out = algo::scc(&g, &cfg).unwrap();
            assert_eq!(out.labels, expect, "{gname}/{cname}");
        }
    }
}

#[test]
fn matrix_kcore_matches_oracle() {
    // k-core reads the graph as undirected, so symmetrise the matrix
    // graphs before preprocessing (the paper's §II-A ingestion convention).
    for (gname, _, edges) in matrix_graphs() {
        let sym: Vec<(u64, u64)> = edges
            .iter()
            .flat_map(|&(s, d)| [(s as u64, d as u64), (d as u64, s as u64)])
            .collect();
        let g = prepare(&sym, 5);
        let dense = dense_edges(&g, &sym);
        let expect = reference::kcore(g.num_vertices(), &dense, 3);
        for (cname, cfg) in matrix_configs(g.num_vertices() as u64, 4) {
            let (flags, _) = algo::kcore(&g, 3, &cfg).unwrap();
            assert_eq!(flags, expect, "{gname}/{cname}");
        }
    }
}

#[test]
fn matrix_hits_matches_oracle() {
    for (gname, g, edges) in matrix_graphs() {
        let (ea, eh) = reference::hits(g.num_vertices(), &edges, 6);
        for (cname, cfg) in matrix_configs(g.num_vertices() as u64, 8) {
            let out = algo::hits(&g, 6, &cfg).unwrap();
            let label = format!("{gname}/{cname}");
            assert_close(&out.authorities, &ea, 1e-9, &label);
            assert_close(&out.hubs, &eh, 1e-9, &label);
        }
    }
}

#[test]
fn matrix_ppr_matches_oracle() {
    for (gname, g, edges) in matrix_graphs() {
        let sources = [0u32, 3];
        let expect = reference::ppr(g.num_vertices(), &edges, &sources, g.out_degrees(), 8);
        for (cname, cfg) in matrix_configs(g.num_vertices() as u64, 8) {
            let prog = PersonalizedPageRank::new(sources, Arc::clone(g.out_degrees()));
            let (vals, _) = engine::run(&g, &prog, &cfg.with_max_iterations(8)).unwrap();
            assert_close(&vals, &expect, 1e-9, &format!("{gname}/{cname}"));
        }
    }
}

// ---------------------------------------------------------------------------
// Prefetch equivalence: the background prefetcher reorders *when* files are
// read, never what is computed, so every algorithm of the oracle matrix
// must produce bitwise-identical results with `prefetch` on and off (and
// `prefetch=false` is exactly the pre-prefetch synchronous behaviour).
// ---------------------------------------------------------------------------

/// Run one algorithm and collapse its output to a bit-exact fingerprint.
fn algo_fingerprint(
    algo_name: &str,
    g: &PreparedGraph,
    cfg: &EngineConfig,
) -> Vec<u64> {
    let f64_bits = |v: Vec<f64>| v.into_iter().map(f64::to_bits).collect::<Vec<u64>>();
    let u32_words = |v: Vec<u32>| v.into_iter().map(u64::from).collect::<Vec<u64>>();
    match algo_name {
        "pagerank" => f64_bits(algo::pagerank(g, 6, &cfg.clone().with_max_iterations(6)).unwrap().0),
        "bfs" => u32_words(algo::bfs(g, 0, cfg).unwrap().0),
        "sssp" => {
            let w = sssp::hash_weights(0.5, 2.5);
            let prog = algo::Sssp::new(0, w);
            let cfg = cfg.clone().with_max_iterations(g.num_vertices() as usize + 1);
            f64_bits(engine::run(g, &prog, &cfg).unwrap().0)
        }
        "wcc" => u32_words(algo::wcc(g, cfg).unwrap().0),
        "scc" => u32_words(algo::scc(g, cfg).unwrap().labels),
        "kcore" => u32_words(algo::kcore(g, 3, cfg).unwrap().0),
        "hits" => {
            let out = algo::hits(g, 6, cfg).unwrap();
            let mut bits = f64_bits(out.authorities);
            bits.extend(f64_bits(out.hubs));
            bits
        }
        "ppr" => {
            let prog = PersonalizedPageRank::new([0u32, 3], Arc::clone(g.out_degrees()));
            f64_bits(engine::run(g, &prog, &cfg.clone().with_max_iterations(8)).unwrap().0)
        }
        other => unreachable!("unknown algorithm {other}"),
    }
}

#[test]
fn matrix_prefetch_on_off_bitwise_identical() {
    const ALGOS: [&str; 8] = [
        "pagerank", "bfs", "sssp", "wcc", "scc", "kcore", "hits", "ppr",
    ];
    for (gname, g, edges) in matrix_graphs() {
        // k-core needs an undirected (symmetrised) graph; everything else
        // runs on the matrix graph as-is.
        let sym: Vec<(u64, u64)> = edges
            .iter()
            .flat_map(|&(s, d)| [(s as u64, d as u64), (d as u64, s as u64)])
            .collect();
        let g_sym = prepare(&sym, 5);
        let n = g.num_vertices() as u64;
        for algo_name in ALGOS {
            let graph = if algo_name == "kcore" { &g_sym } else { &g };
            // SPU with a zero budget streams every sub-shard (the prefetch
            // path); DPU streams by construction; MPU half-resident mixes
            // both. Callback keeps chunk accumulation order deterministic,
            // making bitwise comparison meaningful under threads > 1.
            for (strategy, budget) in [
                (Strategy::Spu, 0),
                (Strategy::Dpu, 0),
                (Strategy::Mpu, 4 * n + n * 8),
            ] {
                let base = EngineConfig::default()
                    .with_strategy(strategy)
                    .with_budget(budget)
                    .with_sync(SyncMode::Callback)
                    .with_threads(3);
                let on = algo_fingerprint(algo_name, graph, &base.clone().with_prefetch(true));
                let off = algo_fingerprint(algo_name, graph, &base.with_prefetch(false));
                assert_eq!(
                    on, off,
                    "{gname}/{algo_name}/{strategy:?}: prefetch on/off diverged"
                );
            }
        }
    }
}

#[test]
fn prefetch_on_off_same_io_totals() {
    // Prefetching must not change *what* is read, only when: I/O totals
    // are byte-identical across the two settings, for DPU, the streaming
    // (zero-budget) SPU path, and MPU's half-resident phase B/C streams
    // (which exercise both the row sub-shard stream and the mixed
    // shard+hub column stream).
    let raw = rmat_raw(8, 4, 31);
    let n = prepare(&raw, 4).num_vertices() as u64;
    for (strategy, budget) in [
        (Strategy::Dpu, 0),
        (Strategy::Spu, 0),
        (Strategy::Mpu, 4 * n + n * 8),
    ] {
        let mut totals = Vec::new();
        for prefetch in [true, false] {
            let g = prepare(&raw, 4);
            let cfg = EngineConfig::default()
                .with_strategy(strategy)
                .with_budget(budget)
                .with_prefetch(prefetch);
            let (_, stats) = algo::pagerank(&g, 3, &cfg).unwrap();
            totals.push((stats.io.read_bytes, stats.io.written_bytes));
        }
        assert_eq!(totals[0], totals[1], "{strategy:?}");
    }
}

// ---------------------------------------------------------------------------
// Thread-count determinism: the parallel absorb/finalize/hub-merge paths
// partition work into destination-disjoint chunks whose per-slot fold
// order is fixed (row order), so results must be *bitwise*-identical at
// every thread count — for both sync flavours, not just Callback.
// ---------------------------------------------------------------------------

#[test]
fn matrix_thread_counts_bitwise_identical() {
    const ALGOS: [&str; 8] = [
        "pagerank", "bfs", "sssp", "wcc", "scc", "kcore", "hits", "ppr",
    ];
    let raw = rmat_raw(8, 6, 41);
    let sym: Vec<(u64, u64)> = raw
        .iter()
        .flat_map(|&(s, d)| [(s, d), (d, s)])
        .collect();
    let g = prepare(&raw, 5);
    let g_sym = prepare(&sym, 5);
    let n = g.num_vertices() as u64;
    for algo_name in ALGOS {
        let graph = if algo_name == "kcore" { &g_sym } else { &g };
        // Zero-budget SPU streams every sub-shard (prefetch decode workers
        // engage at threads > 1); DPU exercises the hub write/merge path;
        // MPU half-resident mixes the resident and hub phases.
        for (strategy, budget) in [
            (Strategy::Spu, 0),
            (Strategy::Dpu, 0),
            (Strategy::Mpu, 4 * n + n * 8),
        ] {
            for sync in [SyncMode::Callback, SyncMode::Lock] {
                let base = EngineConfig::default()
                    .with_strategy(strategy)
                    .with_budget(budget)
                    .with_sync(sync);
                let one = algo_fingerprint(algo_name, graph, &base.clone().with_threads(1));
                for threads in [2usize, 4] {
                    let fp =
                        algo_fingerprint(algo_name, graph, &base.clone().with_threads(threads));
                    assert_eq!(
                        one, fp,
                        "{algo_name}/{strategy:?}/{sync:?}: {threads} threads diverged from 1"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Encoding equivalence (format v3): the delta+varint blobs inflate to the
// same words a raw load casts in place, so the choice of on-disk encoding
// can never change computed results — pinned bitwise across the full
// algorithm × strategy matrix — while the counted disk traffic of the
// streamed strategies must drop.
// ---------------------------------------------------------------------------

#[test]
fn matrix_raw_and_auto_encodings_bitwise_identical() {
    const ALGOS: [&str; 8] = [
        "pagerank", "bfs", "sssp", "wcc", "scc", "kcore", "hits", "ppr",
    ];
    let raw_edges = rmat_raw(8, 6, 41);
    let sym: Vec<(u64, u64)> = raw_edges
        .iter()
        .flat_map(|&(s, d)| [(s, d), (d, s)])
        .collect();
    for algo_name in ALGOS {
        let edges: &[(u64, u64)] = if algo_name == "kcore" { &sym } else { &raw_edges };
        let g_raw = prepare_enc(edges, 5, EncodingPolicy::Raw);
        let g_auto = prepare_enc(edges, 5, EncodingPolicy::Auto);
        assert!(
            g_auto.total_subshard_bytes().unwrap() < g_raw.total_subshard_bytes().unwrap(),
            "auto encoding must shrink the on-disk sub-shards"
        );
        let n = g_raw.num_vertices() as u64;
        for (strategy, budget) in [
            (Strategy::Spu, 0),
            (Strategy::Dpu, 0),
            (Strategy::Mpu, 4 * n + n * 8),
        ] {
            let cfg = EngineConfig::default()
                .with_strategy(strategy)
                .with_budget(budget)
                .with_sync(SyncMode::Callback)
                .with_threads(3);
            let raw_fp = algo_fingerprint(algo_name, &g_raw, &cfg);
            let auto_fp = algo_fingerprint(algo_name, &g_auto, &cfg);
            assert_eq!(
                raw_fp, auto_fp,
                "{algo_name}/{strategy:?}: raw vs auto encoding diverged"
            );
        }
    }
}

#[test]
fn auto_encoding_cuts_streamed_read_bytes() {
    let raw = rmat_raw(10, 8, 7);
    for (strategy, budget) in [(Strategy::Spu, 0u64), (Strategy::Dpu, 0)] {
        let mut reads = Vec::new();
        for encoding in [EncodingPolicy::Raw, EncodingPolicy::Auto] {
            let g = prepare_enc(&raw, 4, encoding);
            let cfg = EngineConfig::default()
                .with_strategy(strategy)
                .with_budget(budget);
            let (_, stats) = algo::pagerank(&g, 3, &cfg).unwrap();
            reads.push(stats.io.read_bytes as f64 / stats.iterations as f64);
        }
        let ratio = reads[0] / reads[1];
        assert!(
            ratio >= 1.5,
            "{strategy:?}: bytes/iter only dropped {ratio:.2}x ({} -> {})",
            reads[0],
            reads[1]
        );
    }
}

// ---------------------------------------------------------------------------
// Dynamic-graph equivalence (delta log): after K randomized add_edges
// batches, every algorithm under every strategy must be bitwise-identical
// across (a) the delta-log graph with its chains still pending, (b) the
// same graph after compaction folded every chain, and (c) a from-scratch
// preparation of the final edge set. The merge-iterated chain, the folded
// base blob and the prep-time blob must expose byte-identical CSR columns,
// so this matrix pins the whole streaming-update subsystem at once.
// ---------------------------------------------------------------------------

#[test]
fn matrix_dynamic_delta_compacted_and_fresh_bitwise_identical() {
    use nxgraph::core::dynamic::{DynamicConfig, DynamicGraph};
    use rand::{Rng, SeedableRng};

    const ALGOS: [&str; 8] = [
        "pagerank", "bfs", "sssp", "wcc", "scc", "kcore", "hits", "ppr",
    ];
    let base = rmat_raw(8, 6, 97);
    // K randomized batches over the existing vertex set (so every commit
    // takes the incremental path).
    let mut known: Vec<u64> = base.iter().flat_map(|&(s, d)| [s, d]).collect();
    known.sort_unstable();
    known.dedup();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
    let batches: Vec<Vec<(u64, u64)>> = (0..6)
        .map(|_| {
            (0..40)
                .map(|_| {
                    (
                        known[rng.random_range(0..known.len())],
                        known[rng.random_range(0..known.len())],
                    )
                })
                .collect()
        })
        .collect();

    // (a) delta-log graph, compaction held off so chains stay pending.
    let disk_a: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let g = preprocess(&base, &PrepConfig::new("dyn-a", 5), disk_a).unwrap();
    let mut dg_chained = DynamicGraph::with_config(g, DynamicConfig::never_compact()).unwrap();
    // (b) same stream, then an explicit fold of every chain.
    let disk_b: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let g = preprocess(&base, &PrepConfig::new("dyn-b", 5), disk_b).unwrap();
    let mut dg_compacted = DynamicGraph::with_config(g, DynamicConfig::never_compact()).unwrap();
    for batch in &batches {
        assert!(!dg_chained.add_edges(batch).unwrap().rebuilt);
        assert!(!dg_compacted.add_edges(batch).unwrap().rebuilt);
    }
    assert!(
        dg_chained.graph().manifest().chains().unwrap().iter().any(|c| c.3.deltas > 0),
        "variant (a) must actually carry pending delta chains"
    );
    assert!(dg_compacted.compact().unwrap().cells_folded > 0);
    assert!(
        dg_compacted.graph().manifest().chains().unwrap().iter().all(|c| c.3.deltas == 0),
        "variant (b) must have folded every chain"
    );
    // (c) from-scratch preparation of the final edge set.
    let mut full = base.clone();
    full.extend(batches.iter().flatten());
    let disk_c: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let fresh = preprocess(&full, &PrepConfig::new("dyn-c", 5), disk_c).unwrap();
    assert_eq!(fresh.num_edges(), dg_chained.graph().num_edges());

    let n = fresh.num_vertices() as u64;
    for algo_name in ALGOS {
        for (strategy, budget) in [
            (Strategy::Spu, 0),
            (Strategy::Dpu, 0),
            (Strategy::Mpu, 4 * n + n * 8),
        ] {
            let cfg = EngineConfig::default()
                .with_strategy(strategy)
                .with_budget(budget)
                .with_sync(SyncMode::Callback)
                .with_threads(3);
            let chained = algo_fingerprint(algo_name, dg_chained.graph(), &cfg);
            let compacted = algo_fingerprint(algo_name, dg_compacted.graph(), &cfg);
            let scratch = algo_fingerprint(algo_name, &fresh, &cfg);
            assert_eq!(
                chained, scratch,
                "{algo_name}/{strategy:?}: delta-log chain diverged from fresh prep"
            );
            assert_eq!(
                compacted, scratch,
                "{algo_name}/{strategy:?}: compacted graph diverged from fresh prep"
            );
        }
    }
}

#[test]
fn matrix_dynamic_background_maintenance_bitwise_identical() {
    use nxgraph::core::dynamic::{DynamicConfig, DynamicGraph};
    use rand::{Rng, SeedableRng};

    const ALGOS: [&str; 8] = [
        "pagerank", "bfs", "sssp", "wcc", "scc", "kcore", "hits", "ppr",
    ];
    let base = rmat_raw(8, 6, 97);
    let mut known: Vec<u64> = base.iter().flat_map(|&(s, d)| [s, d]).collect();
    known.sort_unstable();
    known.dedup();
    let mut rng = rand::rngs::StdRng::seed_from_u64(4321);
    let batches: Vec<Vec<(u64, u64)>> = (0..6)
        .map(|_| {
            (0..40)
                .map(|_| {
                    (
                        known[rng.random_range(0..known.len())],
                        known[rng.random_range(0..known.len())],
                    )
                })
                .collect()
        })
        .collect();

    // The same stream committed twice: with every fold (and an auto-scrub
    // after each) running on the maintenance thread, and never at all.
    let disk_bg: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let g = preprocess(&base, &PrepConfig::new("dyn-bg", 5), disk_bg).unwrap();
    let cfg = DynamicConfig {
        max_deltas: 2, // folds keep firing mid-stream
        max_delta_ratio: f64::INFINITY,
        ..DynamicConfig::background()
    };
    let mut dg_bg = DynamicGraph::with_config(g, cfg).unwrap();
    let disk_inl: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let g = preprocess(&base, &PrepConfig::new("dyn-inline", 5), disk_inl).unwrap();
    let mut dg_inline = DynamicGraph::with_config(g, DynamicConfig::never_compact()).unwrap();
    for batch in &batches {
        let stats = dg_bg.add_edges(batch).unwrap();
        assert!(!stats.rebuilt && stats.cells_compacted == 0);
        assert!(!dg_inline.add_edges(batch).unwrap().rebuilt);
    }
    dg_bg.wait_maintenance_idle().unwrap();
    let stats = dg_bg.maintenance().unwrap().stats();
    assert!(stats.cells_folded > 0, "background folds must have run: {stats:?}");
    assert!(stats.scrubs > 0, "auto-scrub must have run: {stats:?}");
    assert!(dg_bg.maintenance().unwrap().last_scrub().unwrap().is_clean());

    let mut full = base.clone();
    full.extend(batches.iter().flatten());
    let disk_c: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let fresh = preprocess(&full, &PrepConfig::new("dyn-fresh", 5), disk_c).unwrap();
    assert_eq!(fresh.num_edges(), dg_bg.graph().num_edges());

    let n = fresh.num_vertices() as u64;
    for algo_name in ALGOS {
        for (strategy, budget) in [
            (Strategy::Spu, 0),
            (Strategy::Dpu, 0),
            (Strategy::Mpu, 4 * n + n * 8),
        ] {
            let cfg = EngineConfig::default()
                .with_strategy(strategy)
                .with_budget(budget)
                .with_sync(SyncMode::Callback)
                .with_threads(3);
            let bg = algo_fingerprint(algo_name, dg_bg.graph(), &cfg);
            let chained = algo_fingerprint(algo_name, dg_inline.graph(), &cfg);
            let scratch = algo_fingerprint(algo_name, &fresh, &cfg);
            assert_eq!(
                bg, scratch,
                "{algo_name}/{strategy:?}: background-folded graph diverged from fresh prep"
            );
            assert_eq!(
                chained, scratch,
                "{algo_name}/{strategy:?}: unfolded chain diverged from fresh prep"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy::Auto regression: §III-B degradation at the budget extremes.
// ---------------------------------------------------------------------------

#[test]
fn choose_strategy_degrades_mpu_at_budget_extremes() {
    let (n, p, value_size) = (100_000u64, 16u32, 8usize);
    // Tiny budget: even the degree table does not fit → DPU.
    assert_eq!(choose_strategy(n, p, value_size, 0).0, Strategy::Dpu);
    assert_eq!(choose_strategy(n, p, value_size, 4 * n).0, Strategy::Dpu);
    // Huge budget: ping-pong intervals fully resident → SPU.
    assert_eq!(choose_strategy(n, p, value_size, u64::MAX).0, Strategy::Spu);
    let spu_floor = 4 * n + 2 * n * value_size as u64;
    assert_eq!(choose_strategy(n, p, value_size, spu_floor).0, Strategy::Spu);
    // In between, MPU — shrinking toward either end flips it over.
    let (s, plan) = choose_strategy(n, p, value_size, 4 * n + n * value_size as u64);
    assert_eq!(s, Strategy::Mpu);
    assert!(plan.resident_intervals > 0 && plan.resident_intervals < p as usize);
    // (`auto_strategy_resolves_as_documented` checks that the Auto engine
    // resolves to exactly these strategies end-to-end.)
}

#[test]
fn run_stats_account_edges_and_io() {
    let raw = rmat_raw(8, 4, 29);
    let g = prepare(&raw, 4);
    let cfg = EngineConfig::default().with_strategy(Strategy::Dpu);
    let (_, stats) = algo::pagerank(&g, 3, &cfg).unwrap();
    assert_eq!(stats.edges_traversed, g.num_edges() * 3);
    assert!(stats.io.read_bytes > 0);
    assert!(stats.io.written_bytes > 0);
    assert!(stats.mteps() > 0.0);
}
