//! End-to-end pipeline tests: generate → preprocess → run every engine →
//! compare against the in-memory oracles.

use std::sync::Arc;

use nxgraph::core::algo::{self, pagerank::PageRank};
use nxgraph::core::engine::{self, EngineConfig, Strategy, SyncMode};
use nxgraph::core::prep::{preprocess, PrepConfig};
use nxgraph::core::reference;
use nxgraph::core::PreparedGraph;
use nxgraph::graphgen::{er, rmat};
use nxgraph::storage::{Disk, MemDisk};

fn prepare(raw: &[(u64, u64)], p: u32) -> PreparedGraph {
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    preprocess(raw, &PrepConfig::new("pipeline", p), disk).unwrap()
}

fn dense_edges(g: &PreparedGraph, raw: &[(u64, u64)]) -> Vec<(u32, u32)> {
    // Degreeing assigns ids by ascending index; recompute the mapping.
    let mut idx: Vec<u64> = raw.iter().flat_map(|&(s, d)| [s, d]).collect();
    idx.sort_unstable();
    idx.dedup();
    assert_eq!(idx.len(), g.num_vertices() as usize);
    raw.iter()
        .map(|&(s, d)| {
            (
                idx.binary_search(&s).unwrap() as u32,
                idx.binary_search(&d).unwrap() as u32,
            )
        })
        .collect()
}

fn rmat_raw(scale: u32, ef: u32, seed: u64) -> Vec<(u64, u64)> {
    rmat::generate(&rmat::RmatConfig::graph500(scale, ef, seed))
        .into_iter()
        .map(|e| (e.src, e.dst))
        .collect()
}

#[test]
fn all_strategies_and_sync_modes_agree_on_pagerank() {
    let raw = rmat_raw(9, 8, 11);
    let g = prepare(&raw, 6);
    let edges = dense_edges(&g, &raw);
    let expect = reference::pagerank(g.num_vertices(), &edges, g.out_degrees(), 10);

    // MPU budget forcing half-resident intervals.
    let n = g.num_vertices() as u64;
    let mpu_budget = 4 * n + n * 8;

    for (strategy, budget) in [
        (Strategy::Spu, u64::MAX),
        (Strategy::Dpu, 0),
        (Strategy::Mpu, mpu_budget),
        (Strategy::Auto, u64::MAX),
        (Strategy::Auto, mpu_budget),
        (Strategy::Auto, 0),
    ] {
        for sync in [SyncMode::Callback, SyncMode::Lock] {
            let cfg = EngineConfig::default()
                .with_strategy(strategy)
                .with_budget(budget)
                .with_sync(sync)
                .with_max_iterations(10);
            let (vals, stats) = algo::pagerank(&g, 10, &cfg).unwrap();
            assert_eq!(stats.iterations, 10);
            for (v, (a, b)) in vals.iter().zip(&expect).enumerate() {
                assert!(
                    (a - b).abs() < 1e-10,
                    "{strategy:?}/{sync:?} budget {budget}: vertex {v}: {a} vs {b}"
                );
            }
        }
    }
}

#[test]
fn auto_strategy_resolves_as_documented() {
    let raw = rmat_raw(8, 6, 3);
    let g = prepare(&raw, 4);
    let n = g.num_vertices() as u64;
    let cases = [
        (u64::MAX, Strategy::Spu),
        (4 * n + n * 8, Strategy::Mpu),
        (0, Strategy::Dpu),
    ];
    for (budget, want) in cases {
        let cfg = EngineConfig::default()
            .with_budget(budget)
            .with_max_iterations(2);
        let (_, stats) = algo::pagerank(&g, 2, &cfg).unwrap();
        assert_eq!(stats.strategy, want, "budget {budget}");
    }
}

#[test]
fn bfs_matches_oracle_across_strategies() {
    let raw = rmat_raw(9, 4, 7);
    let g = prepare(&raw, 5);
    let edges = dense_edges(&g, &raw);
    let expect = reference::bfs(g.num_vertices(), &edges, 0);
    let n = g.num_vertices() as u64;
    for (strategy, budget) in [
        (Strategy::Spu, u64::MAX),
        (Strategy::Dpu, 0),
        (Strategy::Mpu, 4 * n + n * 4),
    ] {
        let cfg = EngineConfig::default()
            .with_strategy(strategy)
            .with_budget(budget);
        let (depths, _) = algo::bfs(&g, 0, &cfg).unwrap();
        assert_eq!(depths, expect, "{strategy:?}");
    }
}

#[test]
fn wcc_matches_union_find() {
    let raw = er::generate(300, 500, 13)
        .into_iter()
        .map(|e| (e.src, e.dst))
        .collect::<Vec<_>>();
    let g = prepare(&raw, 7);
    let edges = dense_edges(&g, &raw);
    let expect = reference::wcc(g.num_vertices(), &edges);
    for strategy in [Strategy::Spu, Strategy::Dpu] {
        let cfg = EngineConfig::default()
            .with_strategy(strategy)
            .with_budget(if strategy == Strategy::Dpu { 0 } else { u64::MAX });
        let (labels, _) = algo::wcc(&g, &cfg).unwrap();
        assert_eq!(labels, expect, "{strategy:?}");
    }
}

#[test]
fn scc_matches_tarjan() {
    let raw = rmat_raw(8, 3, 19);
    let g = prepare(&raw, 5);
    let edges = dense_edges(&g, &raw);
    let expect = reference::scc(g.num_vertices(), &edges);
    let out = algo::scc(&g, &EngineConfig::default()).unwrap();
    assert_eq!(out.labels, expect);
}

#[test]
fn results_invariant_to_partitioning_and_threads() {
    let raw = rmat_raw(8, 8, 23);
    let mut baseline: Option<Vec<f64>> = None;
    for p in [1u32, 3, 8, 16] {
        let g = prepare(&raw, p);
        for threads in [1usize, 2, 8] {
            let cfg = EngineConfig::default()
                .with_threads(threads)
                .with_max_iterations(6);
            let (vals, _) = algo::pagerank(&g, 6, &cfg).unwrap();
            match &baseline {
                None => baseline = Some(vals),
                Some(b) => {
                    for (x, y) in vals.iter().zip(b) {
                        assert!((x - y).abs() < 1e-10, "P={p} threads={threads}");
                    }
                }
            }
        }
    }
}

#[test]
fn pagerank_converges_with_epsilon() {
    // A strongly connected cycle converges exactly; epsilon termination
    // must stop before the iteration cap.
    let raw: Vec<(u64, u64)> = (0..50u64).map(|v| (v, (v + 1) % 50)).collect();
    let g = prepare(&raw, 4);
    let prog = PageRank::new(g.num_vertices(), Arc::clone(g.out_degrees()))
        .with_epsilon(1e-14);
    let cfg = EngineConfig::default().with_max_iterations(500);
    let (vals, stats) = engine::run(&g, &prog, &cfg).unwrap();
    assert!(stats.iterations < 500, "should converge early");
    // Uniform stationary distribution on a cycle.
    for v in &vals {
        assert!((v - 1.0 / 50.0).abs() < 1e-9);
    }
}

#[test]
fn run_stats_account_edges_and_io() {
    let raw = rmat_raw(8, 4, 29);
    let g = prepare(&raw, 4);
    let cfg = EngineConfig::default().with_strategy(Strategy::Dpu);
    let (_, stats) = algo::pagerank(&g, 3, &cfg).unwrap();
    assert_eq!(stats.edges_traversed, g.num_edges() * 3);
    assert!(stats.io.read_bytes > 0);
    assert!(stats.io.written_bytes > 0);
    assert!(stats.mteps() > 0.0);
}
