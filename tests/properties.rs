//! Property-based tests over random graphs: the three update strategies,
//! both sync modes and the oracles must agree for every program, and the
//! DSSS structural invariants must hold for every input.

use std::sync::Arc;

use proptest::prelude::*;

use nxgraph::core::algo;
use nxgraph::core::dsss::{merge_edges, MergedSubShardView, SubShard, SubShardView};
use nxgraph::core::dynamic::{DynamicConfig, DynamicGraph};
use nxgraph::core::engine::{EngineConfig, Strategy as UpdateStrategy, SyncMode};
use nxgraph::core::parallel::split_ranges;
use nxgraph::core::prep::{self, PrepConfig};
use nxgraph::core::reference;
use nxgraph::core::PreparedGraph;
use nxgraph::core::maintain;
use nxgraph::storage::{Disk, EncodingPolicy, GraphManifest, MemDisk, SharedBytes};

/// A random small graph: up to 40 vertices, up to 200 edges (duplicates
/// and self-loops included, as in raw crawls).
fn arb_graph() -> impl Strategy<Value = Vec<(u64, u64)>> {
    (2u64..40, 1usize..200)
        .prop_flat_map(|(n, m)| {
            proptest::collection::vec((0..n, 0..n), m)
        })
        .prop_map(|edges| edges.into_iter().collect())
}

fn prepare(raw: &[(u64, u64)], p: u32) -> PreparedGraph {
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    prep::preprocess(raw, &PrepConfig::new("prop", p), disk).unwrap()
}

fn dense(raw: &[(u64, u64)]) -> (u32, Vec<(u32, u32)>) {
    let mut idx: Vec<u64> = raw.iter().flat_map(|&(s, d)| [s, d]).collect();
    idx.sort_unstable();
    idx.dedup();
    let edges = raw
        .iter()
        .map(|&(s, d)| {
            (
                idx.binary_search(&s).unwrap() as u32,
                idx.binary_search(&d).unwrap() as u32,
            )
        })
        .collect();
    (idx.len() as u32, edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sharding_partitions_every_edge_exactly_once(raw in arb_graph(), p in 1u32..9) {
        let g = prepare(&raw, p);
        let (_, mut edges) = dense(&raw);
        let mut collected = Vec::new();
        for i in 0..p {
            for j in 0..p {
                let ss = g.load_subshard(i, j, false).unwrap();
                ss.validate("prop").unwrap();
                for (s, d) in ss.iter_edges() {
                    prop_assert!(g.interval_range(i).contains(&s));
                    prop_assert!(g.interval_range(j).contains(&d));
                    collected.push((s, d));
                }
            }
        }
        edges.sort_unstable();
        collected.sort_unstable();
        prop_assert_eq!(collected, edges);
    }

    #[test]
    fn view_parse_equals_owned_decode(raw in arb_graph()) {
        // The zero-copy view over encoded bytes must expose exactly what
        // the owned decoder produces, for arbitrary edge sets (duplicates
        // and self-loops included).
        let (_, edges) = dense(&raw);
        let ss = SubShard::from_edges(0, 0, edges);
        let bytes = ss.encode();
        let owned = SubShard::decode(&bytes, "prop").unwrap();
        let view = SubShardView::parse(SharedBytes::from(bytes), "prop", true).unwrap();
        prop_assert_eq!(view.dsts(), &owned.dsts[..]);
        prop_assert_eq!(view.offsets(), &owned.offsets[..]);
        prop_assert_eq!(view.srcs(), &owned.srcs[..]);
        prop_assert_eq!(view.num_edges(), owned.num_edges());
        prop_assert_eq!(&view.to_subshard(), &owned);

        // The v3 delta+varint round trip must land on the same arrays:
        // compressed blob -> view inflate, and compressed blob -> owned
        // decode, under both the forced and the adaptive policy.
        let compressed = ss.encode_with(EncodingPolicy::Compressed);
        let cview =
            SubShardView::parse(SharedBytes::from(compressed.clone()), "prop", true).unwrap();
        prop_assert_eq!(&cview.to_subshard(), &owned);
        prop_assert_eq!(&SubShard::decode(&compressed, "prop").unwrap(), &owned);
        prop_assert_eq!(
            &SubShard::decode(&ss.encode_with(EncodingPolicy::Auto), "prop").unwrap(),
            &owned
        );

        // And the streamed loader agrees with both, end to end — for a
        // raw-encoded and an auto-encoded prepared graph alike.
        for encoding in [EncodingPolicy::Raw, EncodingPolicy::Auto] {
            let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
            let cfg = PrepConfig::new("prop", 3).with_encoding(encoding);
            let g = prep::preprocess(&raw, &cfg, disk).unwrap();
            for i in 0..3 {
                for j in 0..3 {
                    let v = g.load_subshard_view(i, j, false).unwrap();
                    let o = g.load_subshard(i, j, false).unwrap();
                    prop_assert_eq!(v.to_subshard(), o);
                }
            }
        }
    }

    #[test]
    fn delta_blobs_roundtrip_and_merge_equals_sorted_concat(
        base in proptest::collection::vec((0u32..32, 0u32..32), 0..60),
        d1 in proptest::collection::vec((0u32..32, 0u32..32), 1..30),
        d2 in proptest::collection::vec((0u32..32, 0u32..32), 1..30),
    ) {
        // A delta blob is an ordinary sub-shard blob: encode→decode must
        // round-trip under every policy…
        let delta = SubShard::from_edges(0, 0, d1.clone());
        for policy in [EncodingPolicy::Raw, EncodingPolicy::Auto, EncodingPolicy::Compressed] {
            let blob = delta.encode_with(policy);
            prop_assert_eq!(&SubShard::decode(&blob, "prop").unwrap(), &delta);
        }
        // …and merge-iterating base + deltas (the read side of a chain)
        // must equal a from-scratch build of the sorted concatenation.
        let parts = [
            SubShardView::from(&SubShard::from_edges(0, 0, base.clone())),
            SubShardView::from(&delta),
            SubShardView::from(&SubShard::from_edges(0, 0, d2.clone())),
        ];
        let mut all = base;
        all.extend(&d1);
        all.extend(&d2);
        let want = SubShard::from_edges(0, 0, all);
        let merged = MergedSubShardView::merge(&parts).into_view();
        prop_assert_eq!(&merged.to_subshard(), &want);
        prop_assert_eq!(
            merge_edges(&parts).collect::<Vec<_>>(),
            want.iter_edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn compaction_is_idempotent_and_preserves_the_graph(
        raw in arb_graph(),
        extra in proptest::collection::vec((0u64..40, 0u64..40), 1..40),
    ) {
        let g = prepare(&raw, 3);
        let mut dg = DynamicGraph::with_config(g, DynamicConfig::never_compact()).unwrap();
        // Updates may touch unseen vertices, triggering the rebuild path —
        // also a valid commit; chains only exist for incremental commits.
        dg.add_edges(&extra).unwrap();
        let before = dg.raw_edges().unwrap();

        // First fold: every chain collapses, the edge multiset survives.
        dg.compact().unwrap();
        prop_assert!(dg.graph().manifest().chains().unwrap().iter().all(|c| c.3.deltas == 0));
        let mut a = dg.raw_edges().unwrap();
        let mut b = before;
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(&a, &b);

        // Second fold: nothing left to do, and the on-disk cell contents
        // are untouched (idempotence).
        let snapshot: Vec<(String, Vec<u8>)> = {
            let disk = dg.graph().disk();
            let mut names = disk.list();
            names.sort();
            names.iter().map(|n| (n.clone(), disk.read_all(n).unwrap())).collect()
        };
        let report = dg.compact().unwrap();
        prop_assert_eq!(report.cells_folded, 0);
        prop_assert_eq!(report.files_swept, 0);
        let disk = dg.graph().disk();
        for (name, bytes) in &snapshot {
            prop_assert_eq!(&disk.read_all(name).unwrap(), bytes, "{} changed", name);
        }
    }

    #[test]
    fn scrubber_flags_exactly_the_bit_flipped_blob(
        raw in arb_graph(),
        extra in proptest::collection::vec((0usize..64, 0usize..64), 1..20),
        file_sel in 0usize..1 << 16,
        byte_sel in 0usize..1 << 20,
        bit in 0u32..8,
    ) {
        // Prepare a graph, then append deltas over *known* vertices only,
        // so the store holds every referenced blob species: bases, delta
        // chains, a bumped degree generation, and the mapping tables.
        let g = prepare(&raw, 3);
        let disk = Arc::clone(g.disk());
        let mut ids: Vec<u64> = raw.iter().flat_map(|&(s, d)| [s, d]).collect();
        ids.sort_unstable();
        ids.dedup();
        let extra: Vec<(u64, u64)> = extra
            .iter()
            .map(|&(s, d)| (ids[s % ids.len()], ids[d % ids.len()]))
            .collect();
        let mut dg = DynamicGraph::with_config(g, DynamicConfig::never_compact()).unwrap();
        prop_assert!(!dg.add_edges(&extra).unwrap().rebuilt);
        drop(dg);

        // A healthy store scrubs clean…
        let baseline = maintain::scrub(disk.as_ref()).unwrap();
        prop_assert!(baseline.is_clean(), "healthy store flagged: {:?}", baseline);
        prop_assert!(baseline.swept.is_empty());

        // …then enumerate every blob the manifest references and flip one
        // arbitrary bit in one of them.
        let m = GraphManifest::load(disk.as_ref()).unwrap();
        let mut files = vec![
            GraphManifest::mapping_file().to_string(),
            GraphManifest::reverse_mapping_file().to_string(),
            m.degree_file_current().unwrap(),
        ];
        let dirs: &[bool] = if m.has_reverse { &[false, true] } else { &[false] };
        for i in 0..m.num_intervals {
            for j in 0..m.num_intervals {
                for &rev in dirs {
                    let c = m.chain_info(i, j, rev).unwrap();
                    files.push(GraphManifest::subshard_base_file(i, j, rev, c.gen));
                    for k in 1..=c.deltas {
                        files.push(GraphManifest::subshard_delta_file(i, j, rev, c.gen, k));
                    }
                }
            }
        }
        let target = files[file_sel % files.len()].clone();
        let mut bytes = disk.read_all(&target).unwrap();
        let pos = byte_sel % bytes.len();
        bytes[pos] ^= 1 << bit;
        disk.write_all_to(&target, &bytes).unwrap();

        // The scrubber must flag exactly the damaged blob — no misses, no
        // collateral — and park it in quarantine so loads fail hard.
        let report = maintain::scrub(disk.as_ref()).unwrap();
        prop_assert_eq!(
            &report.corrupt,
            &vec![target.clone()],
            "flip of {} byte {} bit {} ", &target, pos, bit
        );
        prop_assert!(report.swept.is_empty(), "swept {:?}", report.swept);
        prop_assert!(disk.exists(&format!("quarantine.{target}")));
        prop_assert!(!disk.exists(&target));
    }

    #[test]
    fn io_plan_windows_are_a_layout_sorted_permutation(
        cells in proptest::collection::vec(
            proptest::collection::vec((0u32..40, 0u32..40, 0usize..4), 0..4),
            0..50,
        ),
        depth in 0usize..24,
    ) {
        use nxgraph::core::engine::iosched::{
            layout_key, plan_windows, PlannedRead, MIN_QUEUE_DEPTH,
        };
        // Arbitrary plans over realistic blob names: per seq, zero or more
        // parts (base blobs, delta chains, hubs — including duplicates).
        let plan: Vec<Vec<String>> = cells
            .iter()
            .map(|parts| {
                parts
                    .iter()
                    .map(|&(i, j, kind)| match kind {
                        0 => format!("ss_{i}_{j}.bin"),
                        1 => format!("ss_{i}_{j}.g1.d{}.bin", (i + j) % 3 + 1),
                        2 => format!("hub_{i}_{j}.bin"),
                        _ => format!("rss_{i}_{j}.bin"),
                    })
                    .collect()
            })
            .collect();
        let windows = plan_windows(&plan, depth);
        let eff = depth.max(MIN_QUEUE_DEPTH);

        // The windows cover exactly the plan's reads — a permutation:
        // nothing dropped, nothing invented, nothing read twice extra.
        let mut seen: Vec<PlannedRead> = windows.iter().flatten().cloned().collect();
        seen.sort();
        let mut want: Vec<PlannedRead> = plan
            .iter()
            .enumerate()
            .flat_map(|(s, names)| {
                names.iter().enumerate().map(move |(p, n)| (s, p, n.clone()))
            })
            .collect();
        want.sort();
        prop_assert_eq!(seen, want);

        // Windows partition the seq space into consecutive depth-sized
        // chunks (the look-ahead gate's accounting depends on this)…
        prop_assert_eq!(windows.len(), plan.len().div_ceil(eff));
        for (w, window) in windows.iter().enumerate() {
            for &(seq, _, _) in window {
                prop_assert_eq!(seq / eff, w, "seq {} escaped window {}", seq, w);
            }
            // …and each window is issued in on-disk layout order, with
            // deterministic (seq, part) tie-breaks.
            for pair in window.windows(2) {
                let (a, b) = (&pair[0], &pair[1]);
                let ord = layout_key(&a.2)
                    .cmp(&layout_key(&b.2))
                    .then_with(|| (a.0, a.1).cmp(&(b.0, b.1)));
                prop_assert!(ord != std::cmp::Ordering::Greater,
                    "window {} not layout-sorted: {:?} before {:?}", w, a, b);
            }
        }
    }

    #[test]
    fn degreeing_is_a_dense_bijection(raw in arb_graph()) {
        let deg = prep::degree(&raw);
        // Ids are 0..n and every id maps back to a unique index.
        let mut seen = std::collections::HashSet::new();
        for (id, &index) in deg.index_of.iter().enumerate() {
            prop_assert!(seen.insert(index));
            prop_assert_eq!(deg.id_of(index), Some(id as u32));
        }
        // Degrees sum to edge count.
        prop_assert_eq!(deg.out_degrees.iter().sum::<u32>() as usize, raw.len());
        prop_assert_eq!(deg.in_degrees.iter().sum::<u32>() as usize, raw.len());
    }

    #[test]
    fn pagerank_strategies_agree_with_oracle(raw in arb_graph(), p in 1u32..7) {
        let g = prepare(&raw, p);
        let (n, edges) = dense(&raw);
        let expect = reference::pagerank(n, &edges, g.out_degrees(), 5);
        let budget_mpu = 4 * n as u64 + n as u64 * 8;
        for (strategy, budget) in [
            (UpdateStrategy::Spu, u64::MAX),
            (UpdateStrategy::Dpu, 0u64),
            (UpdateStrategy::Mpu, budget_mpu),
        ] {
            let cfg = EngineConfig::default()
                .with_strategy(strategy)
                .with_budget(budget)
                .with_threads(3)
                .with_max_iterations(5);
            let (vals, _) = algo::pagerank(&g, 5, &cfg).unwrap();
            for (k, (a, b)) in vals.iter().zip(&expect).enumerate() {
                prop_assert!((a - b).abs() < 1e-9,
                    "{:?} vertex {}: {} vs {}", strategy, k, a, b);
            }
        }
    }

    #[test]
    fn bfs_equals_oracle_for_every_root(raw in arb_graph(), p in 1u32..6) {
        let g = prepare(&raw, p);
        let (n, edges) = dense(&raw);
        // Try three roots spread over the id space.
        for root in [0, n / 2, n - 1] {
            let expect = reference::bfs(n, &edges, root);
            let (depths, _) = algo::bfs(&g, root, &EngineConfig::default()).unwrap();
            prop_assert_eq!(&depths, &expect, "root {}", root);
        }
    }

    #[test]
    fn wcc_equals_union_find(raw in arb_graph(), p in 1u32..6) {
        let g = prepare(&raw, p);
        let (n, edges) = dense(&raw);
        let expect = reference::wcc(n, &edges);
        let (labels, _) = algo::wcc(&g, &EngineConfig::default()).unwrap();
        prop_assert_eq!(labels, expect);
    }

    #[test]
    fn scc_equals_tarjan(raw in arb_graph(), p in 1u32..6) {
        let g = prepare(&raw, p);
        let (n, edges) = dense(&raw);
        let expect = reference::scc(n, &edges);
        let out = algo::scc(&g, &EngineConfig::default()).unwrap();
        prop_assert_eq!(out.labels, expect);
    }

    #[test]
    fn sync_modes_agree(raw in arb_graph(), p in 1u32..6) {
        let g = prepare(&raw, p);
        let cb = algo::pagerank(&g, 4, &EngineConfig::default()).unwrap().0;
        let lk = algo::pagerank(
            &g,
            4,
            &EngineConfig::default().with_sync(SyncMode::Lock),
        )
        .unwrap()
        .0;
        // Lock-mode tasks drain in nondeterministic order, so float sums
        // may differ in the last ulp; require near-equality.
        for (a, b) in cb.iter().zip(&lk) {
            prop_assert!((a - b).abs() < 1e-12, "{} vs {}", a, b);
        }
    }

    #[test]
    fn split_ranges_covers_len_exactly_once(len in 0usize..10_000, parts in 0usize..64) {
        // Every parallel chunking in the engine (absorb tasks, finalize
        // batches, hub merges) rides on `split_ranges`, so it must tile
        // `0..len` exactly: contiguous, in order, no overlap, no gap, and
        // never more pieces than elements or than requested.
        let ranges = split_ranges(len, parts);
        if len == 0 {
            prop_assert!(ranges.is_empty());
        } else {
            prop_assert!(!ranges.is_empty());
            prop_assert!(ranges.len() <= parts.max(1));
            prop_assert!(ranges.len() <= len);
            let mut next = 0usize;
            for r in &ranges {
                prop_assert_eq!(r.start, next, "gap or overlap at {}", r.start);
                prop_assert!(r.end > r.start, "empty piece at {}", r.start);
                next = r.end;
            }
            prop_assert_eq!(next, len);
            // Balanced: piece sizes differ by at most one.
            let min = ranges.iter().map(|r| r.len()).min().unwrap();
            let max = ranges.iter().map(|r| r.len()).max().unwrap();
            prop_assert!(max - min <= 1, "unbalanced: {} vs {}", min, max);
        }
    }

    #[test]
    fn mpu_matches_spu_at_every_budget(raw in arb_graph(), q_frac in 0.0f64..1.0) {
        let g = prepare(&raw, 5);
        let n = g.num_vertices() as u64;
        let want = algo::pagerank(&g, 4, &EngineConfig::default()).unwrap().0;
        let budget = 4 * n + ((2 * n * 8) as f64 * q_frac) as u64;
        let cfg = EngineConfig::default()
            .with_strategy(UpdateStrategy::Mpu)
            .with_budget(budget)
            .with_max_iterations(4);
        let (vals, _) = algo::pagerank(&g, 4, &cfg).unwrap();
        for (a, b) in vals.iter().zip(&want) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }
}

// ---------------------------------------------------------------------------
// Fault-plan determinism: the chaos matrix is only meaningful if a plan
// replayed over the same access sequence injects the identical faults.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn seeded_fault_plan_replays_identically(
        seed in any::<u64>(),
        names in proptest::collection::vec("[a-z]{1,4}_[0-9]{1,2}\\.bin", 1..6),
        accesses in 1u64..120,
    ) {
        use nxgraph::storage::{FaultOp, FaultPlan};
        // Decision purity: the same (plan, name, op, index) always yields
        // the same fault, across two independently-built plans.
        let a = FaultPlan::seeded(seed);
        let b = FaultPlan::seeded(seed);
        for name in &names {
            for op in [FaultOp::Open, FaultOp::Read, FaultOp::Write] {
                for n in 0..accesses {
                    let fa = a.fault_for(name, op, n);
                    prop_assert_eq!(fa, b.fault_for(name, op, n));
                    // Seeded plans only ever fault reads, and every
                    // episode fits inside the default 4-attempt retry
                    // budget (checked as: no 3 consecutive faults).
                    if op != FaultOp::Read {
                        prop_assert!(fa.is_none());
                    } else if n >= 2 {
                        prop_assert!(
                            a.fault_for(name, op, n - 2).is_none()
                                || a.fault_for(name, op, n - 1).is_none()
                                || fa.is_none(),
                            "3-long episode would exhaust the retry budget"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn seeded_fault_disk_injection_logs_replay_identically(
        seed in any::<u64>(),
        rounds in 1usize..30,
    ) {
        use nxgraph::storage::{BufferPool, FaultDisk, FaultPlan};
        // End to end through the wrapper: same plan + same access
        // sequence ⇒ byte-identical injection log, independent of any
        // earlier runs (each replay builds a fresh disk).
        let run = || {
            let mem = MemDisk::new();
            for name in ["ss_0_0.bin", "ss_0_1.bin", "hub_0.bin"] {
                mem.write_all_to(name, &[0x5a; 64]).unwrap();
            }
            let fd = FaultDisk::new(Arc::new(mem), FaultPlan::seeded(seed));
            let pool = BufferPool::new();
            for _ in 0..rounds {
                for name in ["ss_0_0.bin", "ss_0_1.bin", "hub_0.bin"] {
                    let _ = fd.read_shared(name, &pool);
                }
            }
            fd.injection_log()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn error_taxonomy_is_exhaustive_and_injected_faults_are_transient(
        k in 0usize..6,
        seed in any::<u64>(),
    ) {
        use nxgraph::storage::{ErrorClass, StorageError};
        // Every variant maps to exactly one class, and `is_transient`
        // agrees with the class — for arbitrary payloads, not just the
        // ones unit tests happen to construct.
        let e: StorageError = match k {
            0 => StorageError::Io(std::io::Error::other(format!("e{seed}"))),
            1 => StorageError::ShortRead { name: format!("f{seed}"), expected: seed, actual: seed / 2 },
            2 => StorageError::Corrupt { name: format!("f{seed}"), reason: "x".into() },
            3 => StorageError::NotFound(format!("f{seed}")),
            4 => StorageError::Manifest { line: k, reason: "y".into() },
            _ => StorageError::Stalled { name: format!("f{seed}"), waited_ms: seed % 10_000 },
        };
        let class = e.class();
        prop_assert_eq!(e.is_transient(), class == ErrorClass::Transient);
        // The retry layer's contract: exactly Io and ShortRead retry.
        let retryable = matches!(e, StorageError::Io(_) | StorageError::ShortRead { .. });
        prop_assert_eq!(e.is_transient(), retryable);
    }
}
