//! Cross-engine consistency: every baseline produces exactly the results
//! of the NXgraph engines and the in-memory oracles, so the benchmark
//! comparisons measure strategy, not semantics.

use std::sync::Arc;

use nxgraph::baselines::graphchi::{GraphChiConfig, GraphChiEngine};
use nxgraph::baselines::gridgraph::{GridGraphConfig, GridGraphEngine};
use nxgraph::baselines::turbograph::{self, TurboGraphConfig};
use nxgraph::baselines::xstream::{XStreamConfig, XStreamEngine};
use nxgraph::core::algo::{bfs::Bfs, pagerank::PageRank};
use nxgraph::core::prep::{preprocess, PrepConfig};
use nxgraph::core::reference;
use nxgraph::core::PreparedGraph;
use nxgraph::graphgen::rmat;
use nxgraph::storage::{Disk, MemDisk};

fn workload(scale: u32, ef: u32, seed: u64) -> (PreparedGraph, Vec<(u32, u32)>) {
    let raw: Vec<(u64, u64)> = rmat::generate(&rmat::RmatConfig::graph500(scale, ef, seed))
        .into_iter()
        .map(|e| (e.src, e.dst))
        .collect();
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let g = preprocess(&raw, &PrepConfig::forward_only("bl", 6), disk).unwrap();
    let mut idx: Vec<u64> = raw.iter().flat_map(|&(s, d)| [s, d]).collect();
    idx.sort_unstable();
    idx.dedup();
    let edges = raw
        .iter()
        .map(|&(s, d)| {
            (
                idx.binary_search(&s).unwrap() as u32,
                idx.binary_search(&d).unwrap() as u32,
            )
        })
        .collect();
    (g, edges)
}

#[test]
fn pagerank_identical_across_all_engines() {
    let (g, edges) = workload(9, 6, 5);
    let expect = reference::pagerank(g.num_vertices(), &edges, g.out_degrees(), 8);
    let prog = PageRank::new(g.num_vertices(), Arc::clone(g.out_degrees()));

    let gc = GraphChiEngine::prepare(&g).unwrap();
    let (v, _) = gc
        .run(
            &prog,
            &GraphChiConfig {
                threads: 4,
                max_iterations: 8,
            },
        )
        .unwrap();
    for (a, b) in v.iter().zip(&expect) {
        assert!((a - b).abs() < 1e-10, "graphchi");
    }

    let (v, _) = turbograph::run(
        &g,
        &prog,
        &TurboGraphConfig {
            threads: 4,
            max_iterations: 8,
            ..Default::default()
        },
    )
    .unwrap();
    for (a, b) in v.iter().zip(&expect) {
        assert!((a - b).abs() < 1e-10, "turbograph");
    }

    let gg = GridGraphEngine::prepare(&g).unwrap();
    let (v, _) = gg
        .run(
            &prog,
            &GridGraphConfig {
                threads: 4,
                max_iterations: 8,
            },
        )
        .unwrap();
    for (a, b) in v.iter().zip(&expect) {
        assert!((a - b).abs() < 1e-10, "gridgraph");
    }

    let xs = XStreamEngine::prepare(&g).unwrap();
    let (v, _) = xs.run(&prog, &XStreamConfig { max_iterations: 8 }).unwrap();
    for (a, b) in v.iter().zip(&expect) {
        assert!((a - b).abs() < 1e-10, "xstream");
    }
}

#[test]
fn bfs_identical_across_engines() {
    let (g, edges) = workload(9, 3, 17);
    let expect = reference::bfs(g.num_vertices(), &edges, 0);
    let prog = Bfs::new(0);
    let cap = g.num_vertices() as usize + 1;

    let gc = GraphChiEngine::prepare(&g).unwrap();
    let (v, _) = gc
        .run(
            &prog,
            &GraphChiConfig {
                threads: 2,
                max_iterations: cap,
            },
        )
        .unwrap();
    assert_eq!(v, expect, "graphchi");

    let (v, _) = turbograph::run(
        &g,
        &prog,
        &TurboGraphConfig {
            threads: 2,
            max_iterations: cap,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(v, expect, "turbograph");

    let gg = GridGraphEngine::prepare(&g).unwrap();
    let (v, _) = gg
        .run(
            &prog,
            &GridGraphConfig {
                threads: 2,
                max_iterations: cap,
            },
        )
        .unwrap();
    assert_eq!(v, expect, "gridgraph");

    let xs = XStreamEngine::prepare(&g).unwrap();
    let (v, _) = xs.run(&prog, &XStreamConfig { max_iterations: cap }).unwrap();
    assert_eq!(v, expect, "xstream");
}

#[test]
fn io_profiles_are_ordered_as_the_paper_argues() {
    // For one PageRank iteration with ample memory, total bytes moved
    // should order: NXgraph SPU < TurboGraph-like < X-stream-like, and
    // GraphChi-like must exceed SPU (edge-value rewrites).
    let (g, _) = workload(11, 8, 9);
    let prog = PageRank::new(g.num_vertices(), Arc::clone(g.out_degrees()));

    let cfg = nxgraph::core::engine::EngineConfig::default().with_max_iterations(1);
    let (_, nx) = nxgraph::core::algo::pagerank(&g, 1, &cfg).unwrap();

    let (_, tg) = turbograph::run(
        &g,
        &prog,
        &TurboGraphConfig {
            threads: 2,
            max_iterations: 1,
            ..Default::default()
        },
    )
    .unwrap();

    let xs = XStreamEngine::prepare(&g).unwrap();
    let (_, xst) = xs.run(&prog, &XStreamConfig { max_iterations: 1 }).unwrap();

    let gc = GraphChiEngine::prepare(&g).unwrap();
    let (_, gct) = gc
        .run(
            &prog,
            &GraphChiConfig {
                threads: 2,
                max_iterations: 1,
            },
        )
        .unwrap();

    assert!(
        nx.io.total_bytes() < tg.io.total_bytes(),
        "SPU {} vs TurboGraph-like {}",
        nx.io.total_bytes(),
        tg.io.total_bytes()
    );
    assert!(
        tg.io.total_bytes() < xst.io.total_bytes(),
        "TurboGraph-like {} vs X-stream-like {}",
        tg.io.total_bytes(),
        xst.io.total_bytes()
    );
    assert!(
        nx.io.total_bytes() < gct.io.total_bytes(),
        "SPU {} vs GraphChi-like {}",
        nx.io.total_bytes(),
        gct.io.total_bytes()
    );
}
