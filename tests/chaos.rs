//! Chaos matrix: transient faults with retries on must be *invisible* —
//! every algorithm × strategy cell bitwise-identical to a fault-free run
//! — and faults that exhaust the retry budget must surface as typed
//! errors, never as panics, hangs, or silently wrong results.
//!
//! Fault injection is driven by replayable [`FaultPlan`]s (see
//! `nxgraph::storage::fault`): seeded plans fault only reads, in episodes
//! short enough that the default 4-attempt retry policy always clears
//! them, so recovery to bit-identical output is the *required* outcome,
//! not a lucky one.

use std::sync::Arc;
use std::time::Duration;

use nxgraph::core::algo::{self, ppr::PersonalizedPageRank, sssp};
use nxgraph::core::engine::{self, EngineConfig, Strategy, SyncMode};
use nxgraph::core::prep::{preprocess, PrepConfig};
use nxgraph::core::{EngineError, PreparedGraph};
use nxgraph::graphgen::rmat::{self, RmatConfig};
use nxgraph::storage::{
    Disk, EncodingPolicy, FaultDisk, FaultKind, FaultOp, FaultPlan, FaultRule,
    MemDisk, RetryPolicy, StorageError,
};

const ALGOS: [&str; 8] = [
    "pagerank", "bfs", "sssp", "wcc", "scc", "kcore", "hits", "ppr",
];

fn raw_edges(scale: u32, seed: u64) -> Vec<(u64, u64)> {
    rmat::generate(&RmatConfig::graph500(scale, 6, seed))
        .into_iter()
        .map(|e| (e.src, e.dst))
        .collect()
}

/// Preprocess onto a fresh MemDisk and hand back the raw disk so callers
/// can re-open the same bytes through a fault injector.
fn prepare(raw: &[(u64, u64)], p: u32) -> (Arc<dyn Disk>, PreparedGraph) {
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let cfg = PrepConfig::new("chaos", p).with_encoding(EncodingPolicy::Auto);
    let g = preprocess(raw, &cfg, Arc::clone(&disk)).unwrap();
    (disk, g)
}

/// Run one algorithm and collapse its output to a bit-exact fingerprint
/// (same shape as the out-of-core matrix helper).
fn algo_fingerprint(algo_name: &str, g: &PreparedGraph, cfg: &EngineConfig) -> Vec<u64> {
    let f64_bits = |v: Vec<f64>| v.into_iter().map(f64::to_bits).collect::<Vec<u64>>();
    let u32_words = |v: Vec<u32>| v.into_iter().map(u64::from).collect::<Vec<u64>>();
    match algo_name {
        "pagerank" => {
            f64_bits(algo::pagerank(g, 6, &cfg.clone().with_max_iterations(6)).unwrap().0)
        }
        "bfs" => u32_words(algo::bfs(g, 0, cfg).unwrap().0),
        "sssp" => {
            let prog = algo::Sssp::new(0, sssp::hash_weights(0.5, 2.5));
            let cfg = cfg.clone().with_max_iterations(g.num_vertices() as usize + 1);
            f64_bits(engine::run(g, &prog, &cfg).unwrap().0)
        }
        "wcc" => u32_words(algo::wcc(g, cfg).unwrap().0),
        "scc" => u32_words(algo::scc(g, cfg).unwrap().labels),
        "kcore" => u32_words(algo::kcore(g, 3, cfg).unwrap().0),
        "hits" => {
            let out = algo::hits(g, 6, cfg).unwrap();
            let mut bits = f64_bits(out.authorities);
            bits.extend(f64_bits(out.hubs));
            bits
        }
        "ppr" => {
            let prog = PersonalizedPageRank::new([0u32, 3], Arc::clone(g.out_degrees()));
            f64_bits(engine::run(g, &prog, &cfg.clone().with_max_iterations(8)).unwrap().0)
        }
        other => unreachable!("unknown algorithm {other}"),
    }
}

/// The acceptance matrix: under a seeded fault plan with retries on,
/// every algorithm × strategy cell recovers to output bitwise-identical
/// to the fault-free run — and the recovery is visible in the counters
/// (faults really were injected, retries really fired, nothing gave up).
#[test]
fn matrix_seeded_faults_with_retries_recover_bitwise_identical() {
    let raw = raw_edges(7, 41);
    // k-core reads the graph as undirected; symmetrise for it only.
    let sym: Vec<(u64, u64)> = raw.iter().flat_map(|&(s, d)| [(s, d), (d, s)]).collect();
    let (mem, clean) = prepare(&raw, 4);
    let (mem_sym, clean_sym) = prepare(&sym, 4);
    let n = clean.num_vertices() as u64;

    // One faulted reopen per base graph; access counters accumulate
    // across the whole matrix, which only widens the set of (name, n)
    // pairs the seeded plan gets to fault.
    let faulted_disk = Arc::new(FaultDisk::new(Arc::clone(&mem), FaultPlan::seeded(99)));
    let faulted: Arc<dyn Disk> = Arc::clone(&faulted_disk) as Arc<dyn Disk>;
    let g_fault = PreparedGraph::open(faulted).unwrap();
    let sym_fault_disk = Arc::new(FaultDisk::new(Arc::clone(&mem_sym), FaultPlan::seeded(99)));
    let g_sym_fault = PreparedGraph::open(Arc::clone(&sym_fault_disk) as Arc<dyn Disk>).unwrap();

    for algo_name in ALGOS {
        let (g_clean, g_faulted) = if algo_name == "kcore" {
            (&clean_sym, &g_sym_fault)
        } else {
            (&clean, &g_fault)
        };
        // Zero-budget SPU streams every sub-shard, DPU streams by
        // construction, half-resident MPU exercises the mixed
        // shard-miss + hub plan. The scheduler is on so the faulted
        // reads also exercise the retry wiring inside the I/O scheduler.
        for (strategy, budget) in [
            (Strategy::Spu, 0),
            (Strategy::Dpu, 0),
            (Strategy::Mpu, 4 * n + n * 8),
        ] {
            let cfg = EngineConfig::default()
                .with_strategy(strategy)
                .with_budget(budget)
                .with_sync(SyncMode::Callback)
                .with_io_scheduler(true)
                .with_prefetch(true);
            let want = algo_fingerprint(algo_name, g_clean, &cfg);
            let got = algo_fingerprint(algo_name, g_faulted, &cfg);
            assert_eq!(
                want, got,
                "{algo_name}/{strategy:?}: faulted run diverged from fault-free"
            );
        }
    }

    let injected = faulted_disk.injections() + sym_fault_disk.injections();
    assert!(injected > 0, "seed 99 must fault at least once across the matrix");
    let snap = faulted_disk.io_profile().unwrap().snapshot();
    let snap_sym = sym_fault_disk.io_profile().unwrap().snapshot();
    assert!(
        snap.retries + snap_sym.retries > 0,
        "recovery must come from the retry layer, not luck"
    );
    assert_eq!(snap.giveups + snap_sym.giveups, 0, "seeded plans never exhaust retries");
    assert_eq!(
        snap.injected_faults + snap_sym.injected_faults,
        injected,
        "every injection must be visible in the profile counters"
    );
    // One greppable line for the CI chaos-smoke artifact.
    println!(
        "chaos-matrix: injected={} retries={} giveups={} identical=true",
        injected,
        snap.retries + snap_sym.retries,
        snap.giveups + snap_sym.giveups,
    );
}

/// Retry exhaustion is a typed error — through the synchronous path, the
/// prefetcher, and the I/O scheduler alike — and never wrong output.
#[test]
fn persistent_fault_exhausts_retries_into_a_typed_error() {
    let raw = raw_edges(6, 42);
    let (mem, _g) = prepare(&raw, 3);
    let plan = FaultPlan::new().with_rule(FaultRule {
        name_contains: "ss_".into(),
        op: FaultOp::Read,
        kind: FaultKind::ReadError,
        first: 0,
        count: u64::MAX,
    });
    let fd = Arc::new(FaultDisk::new(mem, plan));
    let mut g = PreparedGraph::open(Arc::clone(&fd) as Arc<dyn Disk>).unwrap();
    // A tight retry budget keeps the test fast; exhaustion semantics are
    // identical at any attempt count.
    g.set_retry_policy(RetryPolicy::with_attempts(2).with_base_backoff(Duration::from_micros(100)));
    for cfg in [
        EngineConfig::default().with_prefetch(false),
        EngineConfig::default(),
        EngineConfig::default().with_strategy(Strategy::Spu).with_budget(0).with_io_scheduler(true),
    ] {
        match algo::pagerank(&g, 3, &cfg) {
            Err(EngineError::Storage(StorageError::Io(_))) => {}
            other => panic!("expected the injected EIO to surface, got {other:?}"),
        }
    }
    let snap = fd.io_profile().unwrap().snapshot();
    assert!(snap.retries > 0, "the retry layer must have tried");
    assert!(snap.giveups > 0, "exhaustion must be counted");
}

/// Non-transient failures are not retried: a persistent open-time fault
/// is surfaced after exactly as many attempts as the policy allows, and a
/// fatal (non-transient) error is never re-issued at all.
#[test]
fn retry_layer_respects_the_error_taxonomy() {
    let raw = raw_edges(6, 43);
    let (mem, _g) = prepare(&raw, 3);
    // Remove a referenced file: NotFound is Fatal, so the first failure
    // must be the only attempt (no retry counter movement).
    let victim = mem
        .list()
        .into_iter()
        .find(|n| n.starts_with("ss_") && n.ends_with(".bin"))
        .unwrap();
    mem.remove(&victim).unwrap();
    let fd = Arc::new(FaultDisk::new(mem, FaultPlan::new()));
    let g = PreparedGraph::open(Arc::clone(&fd) as Arc<dyn Disk>).unwrap();
    let res = algo::pagerank(&g, 3, &EngineConfig::default());
    match res {
        Err(EngineError::Storage(StorageError::NotFound(_))) => {}
        other => panic!("expected NotFound, got {other:?}"),
    }
    let snap = fd.io_profile().unwrap().snapshot();
    assert_eq!(snap.retries, 0, "fatal errors must not be retried");
}

/// The hung-I/O watchdog end to end: a device that stops answering under
/// the I/O scheduler converts into a typed `Stalled` error within the
/// configured deadline — the run cancels cleanly instead of hanging.
#[test]
fn watchdog_converts_a_hung_read_into_a_typed_stall() {
    let raw = raw_edges(6, 44);
    let (mem, _g) = prepare(&raw, 3);
    let plan = FaultPlan::new().with_rule(FaultRule {
        name_contains: "ss_".into(),
        op: FaultOp::Read,
        kind: FaultKind::Stall(Duration::from_millis(1500)),
        first: 0,
        count: u64::MAX,
    });
    let fd = Arc::new(FaultDisk::new(mem, plan));
    let g = PreparedGraph::open(Arc::clone(&fd) as Arc<dyn Disk>).unwrap();
    let cfg = EngineConfig::default()
        .with_strategy(Strategy::Spu)
        .with_budget(0)
        .with_io_scheduler(true)
        .with_io_deadline(Some(Duration::from_millis(100)));
    let t = std::time::Instant::now();
    match algo::pagerank(&g, 3, &cfg) {
        Err(EngineError::Storage(StorageError::Stalled { waited_ms, .. })) => {
            assert!(waited_ms >= 100, "must have waited at least the deadline");
        }
        other => panic!("expected Stalled, got {other:?}"),
    }
    assert!(
        t.elapsed() < Duration::from_secs(10),
        "stall must cancel promptly, not serialize every hung read"
    );
    let snap = fd.io_profile().unwrap().snapshot();
    assert!(snap.stalls > 0, "the tripped watchdog must be counted");
}

/// A stall *shorter* than the deadline is invisible: the watchdog only
/// fires on genuinely hung reads, and slow-but-alive devices still
/// produce bit-identical output.
#[test]
fn watchdog_tolerates_slow_but_alive_reads() {
    let raw = raw_edges(6, 45);
    let (mem, clean) = prepare(&raw, 3);
    let cfg = EngineConfig::default()
        .with_strategy(Strategy::Spu)
        .with_budget(0)
        .with_io_scheduler(true)
        .with_io_deadline(Some(Duration::from_secs(30)));
    let want = algo_fingerprint("pagerank", &clean, &cfg);
    let plan = FaultPlan::new().with_rule(FaultRule {
        name_contains: "ss_".into(),
        op: FaultOp::Read,
        kind: FaultKind::Stall(Duration::from_millis(20)),
        first: 0,
        count: 2,
    });
    let fd = Arc::new(FaultDisk::new(mem, plan));
    let g = PreparedGraph::open(Arc::clone(&fd) as Arc<dyn Disk>).unwrap();
    assert_eq!(algo_fingerprint("pagerank", &g, &cfg), want);
    let snap = fd.io_profile().unwrap().snapshot();
    assert_eq!(snap.stalls, 0, "a met deadline is not a stall");
}
