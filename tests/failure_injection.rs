//! Failure-path tests: disk faults must surface as errors, never as wrong
//! results or hangs; corrupt files must be rejected at load.

use std::sync::Arc;

use nxgraph::core::algo;
use nxgraph::core::dsss::{SubShard, SubShardView};
use nxgraph::core::engine::{EngineConfig, Strategy};
use nxgraph::core::prep::{preprocess, PrepConfig};
use nxgraph::core::{EngineError, PreparedGraph};
use nxgraph::storage::format::{self, Encoding, FileKind};
use nxgraph::storage::manifest::GraphManifest;
use nxgraph::storage::{
    Disk, EncodingPolicy, FaultyDisk, MemDisk, SharedBytes, StorageError,
};

fn raw_edges() -> Vec<(u64, u64)> {
    nxgraph::core::fig1_example_edges()
        .into_iter()
        .map(|(s, d)| (s as u64, d as u64))
        .collect()
}

#[test]
fn preprocessing_fails_cleanly_on_exhausted_disk() {
    let inner: Arc<dyn Disk> = Arc::new(MemDisk::new());
    // Enough for a few files, then fail.
    let disk: Arc<dyn Disk> = Arc::new(FaultyDisk::new(inner, 256));
    let err = preprocess(&raw_edges(), &PrepConfig::new("faulty", 4), disk);
    assert!(err.is_err(), "must surface the injected fault");
}

#[test]
fn dpu_run_fails_cleanly_when_disk_dies_mid_run() {
    // Healthy disk for preprocessing…
    let inner: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let g = preprocess(
        &raw_edges(),
        &PrepConfig::new("mid", 4),
        Arc::clone(&inner),
    )
    .unwrap();
    drop(g);
    // …then reopen through a fault injector that dies after 4 KiB.
    let faulty: Arc<dyn Disk> = Arc::new(FaultyDisk::new(inner, 4096));
    let g = PreparedGraph::open(faulty).unwrap();
    let cfg = EngineConfig::default().with_strategy(Strategy::Dpu);
    let res = algo::pagerank(&g, 10, &cfg);
    match res {
        Err(EngineError::Storage(_)) => {}
        other => panic!("expected a storage error, got {other:?}"),
    }
}

/// A disk whose sub-shard readers advertise more bytes than they deliver
/// — the canonical short-read / early-EOF fault (a file truncated behind
/// the reader's back, a device returning less than its metadata claims).
struct TruncatingDisk(Arc<dyn Disk>);

struct TruncatingRead(Box<dyn nxgraph::storage::DiskRead>);

impl std::io::Read for TruncatingRead {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.0.read(buf)
    }
}

impl nxgraph::storage::DiskRead for TruncatingRead {
    fn len(&self) -> u64 {
        self.0.len() + 7
    }
}

impl Disk for TruncatingDisk {
    fn create(&self, name: &str) -> nxgraph::storage::StorageResult<Box<dyn nxgraph::storage::DiskWrite>> {
        self.0.create(name)
    }
    fn open(&self, name: &str) -> nxgraph::storage::StorageResult<Box<dyn nxgraph::storage::DiskRead>> {
        let r = self.0.open(name)?;
        if name.starts_with("ss_") {
            Ok(Box::new(TruncatingRead(r)))
        } else {
            Ok(r)
        }
    }
    fn exists(&self, name: &str) -> bool {
        self.0.exists(name)
    }
    fn len_of(&self, name: &str) -> nxgraph::storage::StorageResult<u64> {
        self.0.len_of(name)
    }
    fn remove(&self, name: &str) -> nxgraph::storage::StorageResult<()> {
        self.0.remove(name)
    }
    fn list(&self) -> Vec<String> {
        self.0.list()
    }
    fn counters(&self) -> &Arc<nxgraph::storage::IoCounters> {
        self.0.counters()
    }
}

#[test]
fn short_read_is_a_distinct_error_with_lengths() {
    let inner: Arc<dyn Disk> = Arc::new(MemDisk::new());
    preprocess(&raw_edges(), &PrepConfig::new("sr", 2), Arc::clone(&inner)).unwrap();
    let disk: Arc<dyn Disk> = Arc::new(TruncatingDisk(inner));

    // The raw read primitive names the file and both byte counts.
    let name = GraphManifest::subshard_file(1, 0);
    let full = disk.len_of(&name).unwrap();
    let mut buf = nxgraph::storage::AlignedBuf::with_capacity(0);
    match disk.read_into(&name, &mut buf) {
        Err(StorageError::ShortRead {
            name: n,
            expected,
            actual,
        }) => {
            assert_eq!(n, name);
            assert_eq!(expected, full + 7);
            assert_eq!(actual, full);
        }
        other => panic!("expected ShortRead, got {other:?}"),
    }
    let msg = disk.read_into(&name, &mut buf).unwrap_err().to_string();
    assert!(
        msg.contains(&name) && msg.contains(&full.to_string()),
        "unhelpful short-read message: {msg}"
    );

    // End to end: whole runs fail with the same distinct error — through
    // the synchronous path, the prefetcher, and the I/O scheduler alike.
    let g = PreparedGraph::open(disk).unwrap();
    for cfg in [
        EngineConfig::default().with_strategy(Strategy::Dpu).with_prefetch(false),
        EngineConfig::default().with_strategy(Strategy::Dpu),
        EngineConfig::default()
            .with_strategy(Strategy::Spu)
            .with_budget(0)
            .with_io_scheduler(true),
    ] {
        let res = algo::pagerank(&g, 3, &cfg);
        match res {
            Err(EngineError::Storage(StorageError::ShortRead { .. })) => {}
            other => panic!("expected ShortRead to surface, got {other:?}"),
        }
    }
}

#[test]
fn corrupt_subshard_is_rejected() {
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let g = preprocess(&raw_edges(), &PrepConfig::new("corrupt", 2), Arc::clone(&disk)).unwrap();
    // Flip bytes in one sub-shard file.
    let name = GraphManifest::subshard_file(1, 0);
    let mut bytes = disk.read_all(&name).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    disk.write_all_to(&name, &bytes).unwrap();
    let err = g.load_subshard(1, 0, false);
    assert!(err.is_err(), "checksum must catch the corruption");
}

#[test]
fn corrupt_subshard_view_is_rejected_on_every_load() {
    // The verify-once checksum policy must not be disarmed by a *failed*
    // first load: a corrupt file stays detected on retry.
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let g = preprocess(&raw_edges(), &PrepConfig::new("cv", 2), Arc::clone(&disk)).unwrap();
    let name = GraphManifest::subshard_file(1, 0);
    let mut bytes = disk.read_all(&name).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    disk.write_all_to(&name, &bytes).unwrap();
    assert!(g.load_subshard_view(1, 0, false).is_err());
    assert!(
        g.load_subshard_view(1, 0, false).is_err(),
        "retry must still verify the never-successfully-loaded file"
    );
}

#[test]
fn corrupt_hub_is_rejected_even_after_prior_reads() {
    // Hubs are rewritten every iteration under the same name, so hub
    // reads verify every time (the verify-once skip is only for the
    // immutable sub-shard files).
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let g = preprocess(&raw_edges(), &PrepConfig::new("ch", 2), Arc::clone(&disk)).unwrap();
    g.write_hub(0, 1, &[4, 5], &[0.25f64, 0.75]).unwrap();
    assert!(g.read_hub_view::<f64>(0, 1).unwrap().is_some());
    // "Next iteration": same name, fresh (corrupt) content.
    let name = GraphManifest::hub_file(0, 1);
    let mut bytes = disk.read_all(&name).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    disk.write_all_to(&name, &bytes).unwrap();
    assert!(
        g.read_hub_view::<f64>(0, 1).is_err(),
        "rewritten hub must be checksummed on every read"
    );
}

#[test]
fn corrupt_compressed_subshard_is_rejected() {
    // Same contract as the raw path, for delta+varint (v3) blobs: a byte
    // flip is caught by the checksum, and stays caught on retry.
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let cfg = PrepConfig::new("cv3", 2).with_encoding(EncodingPolicy::Compressed);
    let g = preprocess(&raw_edges(), &cfg, Arc::clone(&disk)).unwrap();
    let name = GraphManifest::subshard_file(1, 0);
    let mut bytes = disk.read_all(&name).unwrap();
    assert_eq!(bytes[8], 3, "fixture must actually be a v3 blob");
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    disk.write_all_to(&name, &bytes).unwrap();
    assert!(g.load_subshard_view(1, 0, false).is_err());
    assert!(g.load_subshard_view(1, 0, false).is_err(), "retry must re-verify");
    assert!(g.load_subshard(1, 0, false).is_err());
}

#[test]
fn truncated_compressed_subshard_is_rejected() {
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let cfg = PrepConfig::new("tv3", 2).with_encoding(EncodingPolicy::Compressed);
    let g = preprocess(&raw_edges(), &cfg, Arc::clone(&disk)).unwrap();
    let name = GraphManifest::subshard_file(1, 0);
    let bytes = disk.read_all(&name).unwrap();
    for cut in [16usize, 33, bytes.len() - 1] {
        disk.write_all_to(&name, &bytes[..cut]).unwrap();
        assert!(g.load_subshard_view(1, 0, false).is_err(), "cut at {cut}");
        assert!(g.load_subshard(1, 0, false).is_err(), "cut at {cut}");
    }
}

#[test]
fn corrupt_varint_stream_is_a_clean_format_error() {
    // A v3 blob whose *checksum is valid* but whose varint stream is
    // garbage: the decoder must surface a clean Corrupt error — never a
    // panic, hang or silently wrong arrays. Header claims 2 dsts and 3
    // edges; the stream is runaway continuation bytes.
    let mut payload = Vec::new();
    for w in [0u32, 0, 2, 3] {
        payload.extend_from_slice(&w.to_le_bytes());
    }
    payload.extend_from_slice(&[0x80; 7]);
    let mut blob = Vec::new();
    format::write_blob_encoded(&mut blob, FileKind::SubShard, &payload, Encoding::DeltaVarint)
        .unwrap();
    let err = SubShardView::parse(SharedBytes::from(blob.clone()), "garbage", true).unwrap_err();
    assert!(matches!(err, StorageError::Corrupt { .. }), "{err}");
    assert!(SubShard::decode(&blob, "garbage").is_err());

    // A stream that decodes but contradicts its own header (degrees sum
    // to 1, header says 3 edges) is rejected too.
    let mut payload = Vec::new();
    for w in [0u32, 0, 1, 3] {
        payload.extend_from_slice(&w.to_le_bytes());
    }
    payload.extend_from_slice(&[1, 1, 1, 1, 1]); // dst gap, degree=1, srcs…
    let mut blob = Vec::new();
    format::write_blob_encoded(&mut blob, FileKind::SubShard, &payload, Encoding::DeltaVarint)
        .unwrap();
    let err = SubShardView::parse(SharedBytes::from(blob), "lying", true).unwrap_err();
    assert!(matches!(err, StorageError::Corrupt { .. }), "{err}");
}

// ---------------------------------------------------------------------------
// Delta-chain failure paths: a broken chain must always be a clean error
// (or be invisible, for unreferenced leftovers) — never wrong results.
// ---------------------------------------------------------------------------

/// A prepared graph with one committed delta-log batch (compaction held
/// off so the chain stays on disk), plus the name of one delta blob.
fn chained_graph() -> (Arc<dyn Disk>, nxgraph::core::dynamic::DynamicGraph, u32, u32, String) {
    use nxgraph::core::dynamic::{DynamicConfig, DynamicGraph};
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let g = preprocess(&raw_edges(), &PrepConfig::new("chain", 2), Arc::clone(&disk)).unwrap();
    let mut dg = DynamicGraph::with_config(g, DynamicConfig::never_compact()).unwrap();
    dg.add_edges(&[(0, 4), (5, 1), (2, 6)]).unwrap();
    let (i, j, reverse, info) = dg
        .graph()
        .manifest()
        .chains()
        .unwrap()
        .into_iter()
        .find(|c| !c.2 && c.3.deltas > 0)
        .expect("a forward chain must exist");
    assert!(!reverse);
    let name = GraphManifest::subshard_delta_file(i, j, false, info.gen, 1);
    assert!(disk.exists(&name), "{name} must be on disk");
    (disk, dg, i, j, name)
}

#[test]
fn corrupt_or_truncated_delta_blob_is_rejected() {
    let (disk, dg, i, j, name) = chained_graph();
    let good = disk.read_all(&name).unwrap();
    // Byte flip: caught by the checksum, on the view and the owned path,
    // and still caught on retry (verify-once must not disarm on failure).
    let mut bad = good.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0xff;
    disk.write_all_to(&name, &bad).unwrap();
    assert!(dg.graph().load_subshard_view(i, j, false).is_err());
    assert!(dg.graph().load_subshard_view(i, j, false).is_err(), "retry must re-verify");
    assert!(dg.graph().load_subshard(i, j, false).is_err());
    // Truncations at several depths are clean errors too.
    for cut in [10usize, 33, good.len() - 2] {
        disk.write_all_to(&name, &good[..cut]).unwrap();
        assert!(dg.graph().load_subshard_view(i, j, false).is_err(), "cut {cut}");
    }
    // A blob that is valid but belongs to a *different cell* is rejected
    // by the chain check, not silently merged.
    let alien = nxgraph::core::dsss::SubShard::from_edges(1, 1, vec![(4, 4)]).encode();
    disk.write_all_to(&name, &alien).unwrap();
    let err = dg.graph().load_subshard_view(i, j, false).unwrap_err();
    assert!(err.to_string().contains("chain expects"), "{err}");
    // Restoring the real bytes heals the chain.
    disk.write_all_to(&name, &good).unwrap();
    assert!(dg.graph().load_subshard_view(i, j, false).is_ok());
}

#[test]
fn manifest_listing_a_missing_delta_is_a_clean_error() {
    let (disk, dg, i, j, name) = chained_graph();
    disk.remove(&name).unwrap();
    // Loads and whole runs fail cleanly — no panic, no silently dropped
    // edges.
    assert!(dg.graph().load_subshard_view(i, j, false).is_err());
    assert!(dg.graph().load_subshard(i, j, false).is_err());
    let res = algo::pagerank(dg.graph(), 3, &EngineConfig::default());
    assert!(
        matches!(res, Err(EngineError::Storage(StorageError::NotFound(_)))),
        "{res:?}"
    );
}

#[test]
fn stale_compaction_leftovers_never_change_results() {
    use nxgraph::core::dsss::SubShard;

    // Crash window 1: the fold wrote the next-generation base but died
    // before the manifest save. The manifest still references the old
    // chain, so the leftover is invisible and results are unchanged.
    let (disk, dg, i, j, _name) = chained_graph();
    let cfg = EngineConfig::default().with_max_iterations(4);
    let want = algo::pagerank(dg.graph(), 4, &cfg).unwrap().0;
    let info = dg.graph().chain_info(i, j, false);
    let leftover = GraphManifest::subshard_base_file(i, j, false, info.gen + 1);
    // Write plausible-but-wrong content (missing the delta edges) where a
    // crashed fold would have put the merged blob; a *referenced* file
    // with this content would change PageRank.
    let wrong = SubShard::from_edges(i, j, vec![(0, 0)]).encode();
    disk.write_all_to(&leftover, &wrong).unwrap();
    let graph = nxgraph::core::PreparedGraph::open(Arc::clone(&disk)).unwrap();
    assert_eq!(algo::pagerank(&graph, 4, &cfg).unwrap().0, want);

    // Crash window 2: the fold saved the manifest but died before
    // sweeping the superseded chain files. The stale old-generation base
    // and delta blobs are ignored; results match a clean fold.
    let (disk, mut dg, i, j, delta_name) = chained_graph();
    let want = algo::pagerank(dg.graph(), 4, &cfg).unwrap().0;
    let old_base = disk.read_all(&GraphManifest::subshard_base_file(i, j, false, 0)).unwrap();
    let old_delta = disk.read_all(&delta_name).unwrap();
    assert!(dg.compact().unwrap().cells_folded > 0);
    // Re-create the stale files the sweep would have removed.
    disk.write_all_to(&GraphManifest::subshard_base_file(i, j, false, 0), &old_base).unwrap();
    disk.write_all_to(&delta_name, &old_delta).unwrap();
    let graph = nxgraph::core::PreparedGraph::open(Arc::clone(&disk)).unwrap();
    assert_eq!(algo::pagerank(&graph, 4, &cfg).unwrap().0, want);
    // And the next compact() garbage-collects both leftovers for good:
    // the orphaned delta blob and the superseded plain gen-0 base (its
    // cell's chain lives at a later generation now).
    let mut dg2 = nxgraph::core::dynamic::DynamicGraph::new(graph).unwrap();
    dg2.add_edges(&[(0, 4)]).unwrap();
    let report = dg2.compact().unwrap();
    assert!(
        !disk.exists(&delta_name),
        "orphaned {delta_name} must be swept by compact()"
    );
    assert!(
        !disk.exists(&GraphManifest::subshard_base_file(i, j, false, 0)),
        "superseded gen-0 base must be swept by compact()"
    );
    assert!(report.files_swept >= 2 && report.bytes_swept > 0);
}

#[test]
fn golden_v2_subshard_blob_still_loads() {
    // Byte-for-byte output of the format-v2 writer (PR 3 era) for the
    // sample sub-shard SS(2→1) with edges 5→3, 4→3, 5→2, 4→3, 9→2.
    // Pinned so v3 writers/readers stay backward-compatible: if this test
    // fails, existing prepared graphs on disk would no longer open.
    const GOLDEN_V2: [u8; 88] = [
        0x4e, 0x58, 0x47, 0x52, 0x41, 0x50, 0x48, 0x00, 0x02, 0x00, 0x00, 0x00,
        0x03, 0x00, 0x00, 0x00, 0x38, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
        0x53, 0x3b, 0x15, 0x18, 0x4d, 0xc2, 0xec, 0x8d, 0x02, 0x00, 0x00, 0x00,
        0x01, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00, 0x05, 0x00, 0x00, 0x00,
        0x02, 0x00, 0x00, 0x00, 0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
        0x02, 0x00, 0x00, 0x00, 0x05, 0x00, 0x00, 0x00, 0x05, 0x00, 0x00, 0x00,
        0x09, 0x00, 0x00, 0x00, 0x04, 0x00, 0x00, 0x00, 0x04, 0x00, 0x00, 0x00,
        0x05, 0x00, 0x00, 0x00,
    ];
    let want = SubShard::from_edges(2, 1, vec![(5, 3), (4, 3), (5, 2), (4, 3), (9, 2)]);
    // Today's raw writer still produces exactly these bytes…
    assert_eq!(want.encode(), GOLDEN_V2, "raw v2 writer output changed");
    // …and both decoders load them with full checksum verification.
    assert_eq!(SubShard::decode(&GOLDEN_V2, "golden").unwrap(), want);
    let view = SubShardView::parse(SharedBytes::from(GOLDEN_V2.to_vec()), "golden", true).unwrap();
    assert_eq!(view.to_subshard(), want);
    assert_eq!(view.dsts(), &[2, 3]);
    assert_eq!(view.offsets(), &[0, 2, 5]);
    assert_eq!(view.srcs(), &[5, 9, 4, 4, 5]);
}

#[test]
fn corrupt_manifest_is_rejected() {
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    preprocess(&raw_edges(), &PrepConfig::new("m", 2), Arc::clone(&disk)).unwrap();
    disk.write_all_to("graph.manifest", b"name = broken\nnot a manifest")
        .unwrap();
    assert!(PreparedGraph::open(disk).is_err());
}

#[test]
fn missing_reverse_shards_is_a_clear_error() {
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let g = preprocess(
        &raw_edges(),
        &PrepConfig::forward_only("fwd", 2),
        disk,
    )
    .unwrap();
    let err = algo::wcc(&g, &EngineConfig::default());
    match err {
        Err(EngineError::Invalid(msg)) => {
            assert!(msg.contains("reverse"), "unhelpful message: {msg}")
        }
        other => panic!("expected Invalid, got {other:?}"),
    }
    let err = algo::scc(&g, &EngineConfig::default());
    assert!(matches!(err, Err(EngineError::Invalid(_))));
}

#[test]
fn zero_iterations_is_rejected() {
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let g = preprocess(&raw_edges(), &PrepConfig::new("z", 2), disk).unwrap();
    let res = algo::pagerank(&g, 0, &EngineConfig::default());
    assert!(matches!(res, Err(EngineError::Invalid(_))));
}

#[test]
fn empty_graph_is_rejected_at_prep() {
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let res = preprocess(&[], &PrepConfig::new("empty", 2), disk);
    assert!(matches!(res, Err(EngineError::Invalid(_))));
}
