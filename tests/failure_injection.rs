//! Failure-path tests: disk faults must surface as errors, never as wrong
//! results or hangs; corrupt files must be rejected at load.

use std::sync::Arc;

use nxgraph::core::algo;
use nxgraph::core::dsss::{SubShard, SubShardView};
use nxgraph::core::engine::{EngineConfig, Strategy};
use nxgraph::core::prep::{preprocess, PrepConfig};
use nxgraph::core::{EngineError, PreparedGraph};
use nxgraph::storage::format::{self, Encoding, FileKind};
use nxgraph::storage::manifest::GraphManifest;
use nxgraph::storage::{
    Disk, EncodingPolicy, FaultyDisk, MemDisk, SharedBytes, StorageError,
};

fn raw_edges() -> Vec<(u64, u64)> {
    nxgraph::core::fig1_example_edges()
        .into_iter()
        .map(|(s, d)| (s as u64, d as u64))
        .collect()
}

#[test]
fn preprocessing_fails_cleanly_on_exhausted_disk() {
    let inner: Arc<dyn Disk> = Arc::new(MemDisk::new());
    // Enough for a few files, then fail.
    let disk: Arc<dyn Disk> = Arc::new(FaultyDisk::new(inner, 256));
    let err = preprocess(&raw_edges(), &PrepConfig::new("faulty", 4), disk);
    assert!(err.is_err(), "must surface the injected fault");
}

#[test]
fn dpu_run_fails_cleanly_when_disk_dies_mid_run() {
    // Healthy disk for preprocessing…
    let inner: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let g = preprocess(
        &raw_edges(),
        &PrepConfig::new("mid", 4),
        Arc::clone(&inner),
    )
    .unwrap();
    drop(g);
    // …then reopen through a fault injector that dies after 4 KiB.
    let faulty: Arc<dyn Disk> = Arc::new(FaultyDisk::new(inner, 4096));
    let g = PreparedGraph::open(faulty).unwrap();
    let cfg = EngineConfig::default().with_strategy(Strategy::Dpu);
    let res = algo::pagerank(&g, 10, &cfg);
    match res {
        Err(EngineError::Storage(_)) => {}
        other => panic!("expected a storage error, got {other:?}"),
    }
}

#[test]
fn corrupt_subshard_is_rejected() {
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let g = preprocess(&raw_edges(), &PrepConfig::new("corrupt", 2), Arc::clone(&disk)).unwrap();
    // Flip bytes in one sub-shard file.
    let name = GraphManifest::subshard_file(1, 0);
    let mut bytes = disk.read_all(&name).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    disk.write_all_to(&name, &bytes).unwrap();
    let err = g.load_subshard(1, 0, false);
    assert!(err.is_err(), "checksum must catch the corruption");
}

#[test]
fn corrupt_subshard_view_is_rejected_on_every_load() {
    // The verify-once checksum policy must not be disarmed by a *failed*
    // first load: a corrupt file stays detected on retry.
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let g = preprocess(&raw_edges(), &PrepConfig::new("cv", 2), Arc::clone(&disk)).unwrap();
    let name = GraphManifest::subshard_file(1, 0);
    let mut bytes = disk.read_all(&name).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    disk.write_all_to(&name, &bytes).unwrap();
    assert!(g.load_subshard_view(1, 0, false).is_err());
    assert!(
        g.load_subshard_view(1, 0, false).is_err(),
        "retry must still verify the never-successfully-loaded file"
    );
}

#[test]
fn corrupt_hub_is_rejected_even_after_prior_reads() {
    // Hubs are rewritten every iteration under the same name, so hub
    // reads verify every time (the verify-once skip is only for the
    // immutable sub-shard files).
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let g = preprocess(&raw_edges(), &PrepConfig::new("ch", 2), Arc::clone(&disk)).unwrap();
    g.write_hub(0, 1, &[4, 5], &[0.25f64, 0.75]).unwrap();
    assert!(g.read_hub_view::<f64>(0, 1).unwrap().is_some());
    // "Next iteration": same name, fresh (corrupt) content.
    let name = GraphManifest::hub_file(0, 1);
    let mut bytes = disk.read_all(&name).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    disk.write_all_to(&name, &bytes).unwrap();
    assert!(
        g.read_hub_view::<f64>(0, 1).is_err(),
        "rewritten hub must be checksummed on every read"
    );
}

#[test]
fn corrupt_compressed_subshard_is_rejected() {
    // Same contract as the raw path, for delta+varint (v3) blobs: a byte
    // flip is caught by the checksum, and stays caught on retry.
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let cfg = PrepConfig::new("cv3", 2).with_encoding(EncodingPolicy::Compressed);
    let g = preprocess(&raw_edges(), &cfg, Arc::clone(&disk)).unwrap();
    let name = GraphManifest::subshard_file(1, 0);
    let mut bytes = disk.read_all(&name).unwrap();
    assert_eq!(bytes[8], 3, "fixture must actually be a v3 blob");
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    disk.write_all_to(&name, &bytes).unwrap();
    assert!(g.load_subshard_view(1, 0, false).is_err());
    assert!(g.load_subshard_view(1, 0, false).is_err(), "retry must re-verify");
    assert!(g.load_subshard(1, 0, false).is_err());
}

#[test]
fn truncated_compressed_subshard_is_rejected() {
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let cfg = PrepConfig::new("tv3", 2).with_encoding(EncodingPolicy::Compressed);
    let g = preprocess(&raw_edges(), &cfg, Arc::clone(&disk)).unwrap();
    let name = GraphManifest::subshard_file(1, 0);
    let bytes = disk.read_all(&name).unwrap();
    for cut in [16usize, 33, bytes.len() - 1] {
        disk.write_all_to(&name, &bytes[..cut]).unwrap();
        assert!(g.load_subshard_view(1, 0, false).is_err(), "cut at {cut}");
        assert!(g.load_subshard(1, 0, false).is_err(), "cut at {cut}");
    }
}

#[test]
fn corrupt_varint_stream_is_a_clean_format_error() {
    // A v3 blob whose *checksum is valid* but whose varint stream is
    // garbage: the decoder must surface a clean Corrupt error — never a
    // panic, hang or silently wrong arrays. Header claims 2 dsts and 3
    // edges; the stream is runaway continuation bytes.
    let mut payload = Vec::new();
    for w in [0u32, 0, 2, 3] {
        payload.extend_from_slice(&w.to_le_bytes());
    }
    payload.extend_from_slice(&[0x80; 7]);
    let mut blob = Vec::new();
    format::write_blob_encoded(&mut blob, FileKind::SubShard, &payload, Encoding::DeltaVarint)
        .unwrap();
    let err = SubShardView::parse(SharedBytes::from(blob.clone()), "garbage", true).unwrap_err();
    assert!(matches!(err, StorageError::Corrupt { .. }), "{err}");
    assert!(SubShard::decode(&blob, "garbage").is_err());

    // A stream that decodes but contradicts its own header (degrees sum
    // to 1, header says 3 edges) is rejected too.
    let mut payload = Vec::new();
    for w in [0u32, 0, 1, 3] {
        payload.extend_from_slice(&w.to_le_bytes());
    }
    payload.extend_from_slice(&[1, 1, 1, 1, 1]); // dst gap, degree=1, srcs…
    let mut blob = Vec::new();
    format::write_blob_encoded(&mut blob, FileKind::SubShard, &payload, Encoding::DeltaVarint)
        .unwrap();
    let err = SubShardView::parse(SharedBytes::from(blob), "lying", true).unwrap_err();
    assert!(matches!(err, StorageError::Corrupt { .. }), "{err}");
}

#[test]
fn golden_v2_subshard_blob_still_loads() {
    // Byte-for-byte output of the format-v2 writer (PR 3 era) for the
    // sample sub-shard SS(2→1) with edges 5→3, 4→3, 5→2, 4→3, 9→2.
    // Pinned so v3 writers/readers stay backward-compatible: if this test
    // fails, existing prepared graphs on disk would no longer open.
    const GOLDEN_V2: [u8; 88] = [
        0x4e, 0x58, 0x47, 0x52, 0x41, 0x50, 0x48, 0x00, 0x02, 0x00, 0x00, 0x00,
        0x03, 0x00, 0x00, 0x00, 0x38, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
        0x53, 0x3b, 0x15, 0x18, 0x4d, 0xc2, 0xec, 0x8d, 0x02, 0x00, 0x00, 0x00,
        0x01, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00, 0x05, 0x00, 0x00, 0x00,
        0x02, 0x00, 0x00, 0x00, 0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
        0x02, 0x00, 0x00, 0x00, 0x05, 0x00, 0x00, 0x00, 0x05, 0x00, 0x00, 0x00,
        0x09, 0x00, 0x00, 0x00, 0x04, 0x00, 0x00, 0x00, 0x04, 0x00, 0x00, 0x00,
        0x05, 0x00, 0x00, 0x00,
    ];
    let want = SubShard::from_edges(2, 1, vec![(5, 3), (4, 3), (5, 2), (4, 3), (9, 2)]);
    // Today's raw writer still produces exactly these bytes…
    assert_eq!(want.encode(), GOLDEN_V2, "raw v2 writer output changed");
    // …and both decoders load them with full checksum verification.
    assert_eq!(SubShard::decode(&GOLDEN_V2, "golden").unwrap(), want);
    let view = SubShardView::parse(SharedBytes::from(GOLDEN_V2.to_vec()), "golden", true).unwrap();
    assert_eq!(view.to_subshard(), want);
    assert_eq!(view.dsts(), &[2, 3]);
    assert_eq!(view.offsets(), &[0, 2, 5]);
    assert_eq!(view.srcs(), &[5, 9, 4, 4, 5]);
}

#[test]
fn corrupt_manifest_is_rejected() {
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    preprocess(&raw_edges(), &PrepConfig::new("m", 2), Arc::clone(&disk)).unwrap();
    disk.write_all_to("graph.manifest", b"name = broken\nnot a manifest")
        .unwrap();
    assert!(PreparedGraph::open(disk).is_err());
}

#[test]
fn missing_reverse_shards_is_a_clear_error() {
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let g = preprocess(
        &raw_edges(),
        &PrepConfig::forward_only("fwd", 2),
        disk,
    )
    .unwrap();
    let err = algo::wcc(&g, &EngineConfig::default());
    match err {
        Err(EngineError::Invalid(msg)) => {
            assert!(msg.contains("reverse"), "unhelpful message: {msg}")
        }
        other => panic!("expected Invalid, got {other:?}"),
    }
    let err = algo::scc(&g, &EngineConfig::default());
    assert!(matches!(err, Err(EngineError::Invalid(_))));
}

#[test]
fn zero_iterations_is_rejected() {
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let g = preprocess(&raw_edges(), &PrepConfig::new("z", 2), disk).unwrap();
    let res = algo::pagerank(&g, 0, &EngineConfig::default());
    assert!(matches!(res, Err(EngineError::Invalid(_))));
}

#[test]
fn empty_graph_is_rejected_at_prep() {
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let res = preprocess(&[], &PrepConfig::new("empty", 2), disk);
    assert!(matches!(res, Err(EngineError::Invalid(_))));
}
