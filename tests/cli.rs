//! End-to-end test of the `nxgraph-cli` binary: generate → prep → analyse
//! on a real directory.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    // Integration tests share the target dir with the binaries.
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.push("target");
    path.push(if cfg!(debug_assertions) { "debug" } else { "release" });
    path.push("nxgraph-cli");
    Command::new(path)
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nxgraph-cli-test-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_cli_pipeline() {
    // The binary must exist; build it if the test harness didn't.
    let status = Command::new(env!("CARGO"))
        .args(["build", "-p", "nxgraph-cli"])
        .status()
        .expect("cargo build");
    assert!(status.success());

    let dir = workdir("pipeline");
    let edges = dir.join("edges.txt");
    let graph = dir.join("graph");

    let out = cli()
        .args([
            "generate",
            "rmat",
            "--out",
            edges.to_str().unwrap(),
            "--scale",
            "9",
            "--edge-factor",
            "6",
        ])
        .output()
        .expect("generate");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = cli()
        .args([
            "prep",
            edges.to_str().unwrap(),
            graph.to_str().unwrap(),
            "--intervals",
            "6",
        ])
        .output()
        .expect("prep");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    for sub in [
        vec!["info", graph.to_str().unwrap()],
        vec!["compact", graph.to_str().unwrap()],
        vec!["pagerank", graph.to_str().unwrap(), "--iters", "3", "--top", "2"],
        vec!["bfs", graph.to_str().unwrap(), "--root", "0"],
        vec!["wcc", graph.to_str().unwrap()],
        vec!["scc", graph.to_str().unwrap()],
    ] {
        let out = cli().args(&sub).output().expect("run subcommand");
        assert!(
            out.status.success(),
            "{:?} failed: {}",
            sub,
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(!out.stdout.is_empty(), "{sub:?} produced no output");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_reports_errors_cleanly() {
    let out = cli().arg("frobnicate").output();
    // Binary may not be built in some test orders; build_cli test covers
    // the success path. If present, bad subcommands must fail with usage.
    if let Ok(out) = out {
        assert!(!out.status.success());
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("usage"), "{err}");
    }
}
