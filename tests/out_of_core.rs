//! Out-of-core equivalence tests: the I/O scheduler and `O_DIRECT` reads
//! change *how* bytes reach memory, never *which* bytes or what is
//! computed from them. Every cell of the algorithm × strategy matrix must
//! be bitwise-identical with the scheduler on and off, and a graph read
//! back through `O_DIRECT` must be byte-for-byte the graph the buffered
//! path sees.

use std::sync::Arc;

use nxgraph::core::algo::{self, ppr::PersonalizedPageRank, sssp};
use nxgraph::core::engine::{self, EngineConfig, Strategy, SyncMode};
use nxgraph::core::prep::{preprocess, PrepConfig};
use nxgraph::core::PreparedGraph;
use nxgraph::graphgen::rmat::{self, RmatConfig};
use nxgraph::storage::{
    BufferPool, Disk, DiskConfig, EncodingPolicy, MemDisk, OsDisk,
};

const ALGOS: [&str; 8] = [
    "pagerank", "bfs", "sssp", "wcc", "scc", "kcore", "hits", "ppr",
];

fn raw_edges(scale: u32, seed: u64) -> Vec<(u64, u64)> {
    rmat::generate(&RmatConfig::graph500(scale, 6, seed))
        .into_iter()
        .map(|e| (e.src, e.dst))
        .collect()
}

fn prepare_mem(raw: &[(u64, u64)], p: u32, encoding: EncodingPolicy) -> PreparedGraph {
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let cfg = PrepConfig::new("ooc", p).with_encoding(encoding);
    preprocess(raw, &cfg, disk).unwrap()
}

/// Run one algorithm and collapse its output to a bit-exact fingerprint
/// (same shape as the pipeline matrix helper).
fn algo_fingerprint(algo_name: &str, g: &PreparedGraph, cfg: &EngineConfig) -> Vec<u64> {
    let f64_bits = |v: Vec<f64>| v.into_iter().map(f64::to_bits).collect::<Vec<u64>>();
    let u32_words = |v: Vec<u32>| v.into_iter().map(u64::from).collect::<Vec<u64>>();
    match algo_name {
        "pagerank" => {
            f64_bits(algo::pagerank(g, 6, &cfg.clone().with_max_iterations(6)).unwrap().0)
        }
        "bfs" => u32_words(algo::bfs(g, 0, cfg).unwrap().0),
        "sssp" => {
            let prog = algo::Sssp::new(0, sssp::hash_weights(0.5, 2.5));
            let cfg = cfg.clone().with_max_iterations(g.num_vertices() as usize + 1);
            f64_bits(engine::run(g, &prog, &cfg).unwrap().0)
        }
        "wcc" => u32_words(algo::wcc(g, cfg).unwrap().0),
        "scc" => u32_words(algo::scc(g, cfg).unwrap().labels),
        "kcore" => u32_words(algo::kcore(g, 3, cfg).unwrap().0),
        "hits" => {
            let out = algo::hits(g, 6, cfg).unwrap();
            let mut bits = f64_bits(out.authorities);
            bits.extend(f64_bits(out.hubs));
            bits
        }
        "ppr" => {
            let prog = PersonalizedPageRank::new([0u32, 3], Arc::clone(g.out_degrees()));
            f64_bits(engine::run(g, &prog, &cfg.clone().with_max_iterations(8)).unwrap().0)
        }
        other => unreachable!("unknown algorithm {other}"),
    }
}

#[test]
fn matrix_io_scheduler_on_off_bitwise_identical() {
    let raw = raw_edges(8, 41);
    // k-core reads the graph as undirected; symmetrise for it only.
    let sym: Vec<(u64, u64)> = raw.iter().flat_map(|&(s, d)| [(s, d), (d, s)]).collect();
    let g = prepare_mem(&raw, 5, EncodingPolicy::Auto);
    let g_sym = prepare_mem(&sym, 5, EncodingPolicy::Auto);
    let n = g.num_vertices() as u64;
    for algo_name in ALGOS {
        let graph = if algo_name == "kcore" { &g_sym } else { &g };
        // Zero-budget SPU streams every sub-shard, DPU streams by
        // construction, half-resident MPU exercises the mixed
        // shard-miss + hub plan — all three scheduled paths.
        for (strategy, budget) in [
            (Strategy::Spu, 0),
            (Strategy::Dpu, 0),
            (Strategy::Mpu, 4 * n + n * 8),
        ] {
            let base = EngineConfig::default()
                .with_strategy(strategy)
                .with_budget(budget)
                .with_sync(SyncMode::Callback)
                .with_threads(3)
                .with_prefetch(true);
            let on = algo_fingerprint(algo_name, graph, &base.clone().with_io_scheduler(true));
            let off = algo_fingerprint(algo_name, graph, &base);
            assert_eq!(
                on, off,
                "{algo_name}/{strategy:?}: scheduler on/off diverged"
            );
        }
    }
}

#[test]
fn direct_and_buffered_reads_are_byte_identical() {
    let dir = std::env::temp_dir().join(format!("nxgraph-ooc-direct-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let raw = raw_edges(8, 43);
    {
        let disk: Arc<dyn Disk> = Arc::new(OsDisk::new(&dir).unwrap());
        let cfg = PrepConfig::new("direct", 4).with_encoding(EncodingPolicy::Compressed);
        preprocess(&raw, &cfg, disk).unwrap();
    }
    let buffered = Arc::new(OsDisk::new(&dir).unwrap());
    let direct = Arc::new(
        OsDisk::with_config(&dir, DiskConfig { direct_reads: true }).unwrap(),
    );

    // Every blob — manifests, degree tables, sub-shards of every length,
    // aligned or not — reads back byte-for-byte identical, even though
    // the direct path reads in whole aligned blocks and trims the tail.
    let pool = BufferPool::new();
    let mut names = buffered.list();
    names.sort();
    assert!(!names.is_empty());
    for name in &names {
        let a = buffered.read_shared(name, &pool).unwrap();
        let b = direct.read_shared(name, &pool).unwrap();
        assert_eq!(a.as_slice(), b.as_slice(), "{name} differs under O_DIRECT");
    }
    // Where the platform honoured O_DIRECT the profile shows direct
    // reads; where it refused, fallbacks — never silence.
    let io = direct.io_profile().unwrap().snapshot();
    assert!(
        io.direct_reads + io.direct_fallbacks > 0,
        "direct disk did neither direct reads nor fallbacks: {io:?}"
    );

    // And a full scheduled run over the O_DIRECT disk lands on exactly
    // the bits of the buffered, unscheduled run.
    let g_buf = PreparedGraph::open(buffered as Arc<dyn Disk>).unwrap();
    let g_dir = PreparedGraph::open(direct as Arc<dyn Disk>).unwrap();
    let base = EngineConfig::default()
        .with_strategy(Strategy::Spu)
        .with_budget(0)
        .with_threads(3);
    let want = algo_fingerprint("pagerank", &g_buf, &base);
    let got = algo_fingerprint("pagerank", &g_dir, &base.clone().with_io_scheduler(true));
    assert_eq!(want, got, "O_DIRECT + scheduler changed PageRank bits");

    drop(g_buf);
    drop(g_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cold_cache_drops_are_graceful_mid_run() {
    // Dropping the page cache between runs (the bench's cold-cache mode)
    // must never change results — only timings.
    let dir = std::env::temp_dir().join(format!("nxgraph-ooc-cold-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let raw = raw_edges(7, 47);
    let os = {
        let os = Arc::new(OsDisk::new(&dir).unwrap());
        let disk: Arc<dyn Disk> = Arc::clone(&os) as Arc<dyn Disk>;
        let cfg = PrepConfig::new("cold", 4).with_encoding(EncodingPolicy::Auto);
        preprocess(&raw, &cfg, disk).unwrap();
        os
    };
    let g = PreparedGraph::open(Arc::clone(&os) as Arc<dyn Disk>).unwrap();
    let cfg = EngineConfig::default()
        .with_strategy(Strategy::Spu)
        .with_budget(0)
        .with_io_scheduler(true);
    let want = algo_fingerprint("pagerank", &g, &cfg);
    os.drop_all_page_cache();
    let got = algo_fingerprint("pagerank", &g, &cfg);
    assert_eq!(want, got);
    let io = os.io_profile().unwrap().snapshot();
    assert!(io.cache_drops > 0, "drop_all_page_cache counted nothing");
    assert!(io.sched_batches > 0, "scheduled run recorded no batches");
    drop(g);
    let _ = std::fs::remove_dir_all(&dir);
}
