//! Empirical validation of the Table II I/O model: the byte counters of a
//! real engine run must respect the closed-form bounds (up to file-header
//! and rounding slack).

use std::sync::Arc;

use nxgraph::core::algo;
use nxgraph::core::engine::{EngineConfig, Strategy};
use nxgraph::core::prep::{preprocess, PrepConfig};
use nxgraph::core::PreparedGraph;
use nxgraph::graphgen::rmat;
use nxgraph::storage::{Disk, IoSnapshot, MemDisk};

const ITERS: usize = 4;

fn workload() -> PreparedGraph {
    let raw: Vec<(u64, u64)> = rmat::generate(&rmat::RmatConfig::graph500(11, 8, 77))
        .into_iter()
        .map(|e| (e.src, e.dst))
        .collect();
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    preprocess(&raw, &PrepConfig::forward_only("io", 8), disk).unwrap()
}

fn run(g: &PreparedGraph, strategy: Strategy, budget: u64) -> IoSnapshot {
    let cfg = EngineConfig::default()
        .with_strategy(strategy)
        .with_budget(budget)
        .with_max_iterations(ITERS);
    let (_, stats) = algo::pagerank(g, ITERS, &cfg).unwrap();
    stats.io
}

#[test]
fn spu_with_full_memory_reads_shards_once_and_writes_nothing() {
    let g = workload();
    let shard_bytes = g.total_subshard_bytes().unwrap();
    let io = run(&g, Strategy::Spu, u64::MAX);
    // Everything cached up front: the initial load is the only read.
    assert_eq!(io.written_bytes, 0, "SPU never writes");
    assert!(
        io.read_bytes <= shard_bytes + 4096,
        "read {} vs one pass {}",
        io.read_bytes,
        shard_bytes
    );
}

#[test]
fn spu_with_tight_memory_streams_shards_every_iteration() {
    let g = workload();
    let n = g.num_vertices() as u64;
    let shard_bytes = g.total_subshard_bytes().unwrap();
    // Budget covers ping-pong intervals + degrees only — no shard cache.
    let io = run(&g, Strategy::Spu, 2 * n * 8 + 4 * n);
    assert_eq!(io.written_bytes, 0);
    let per_iter = io.read_bytes as f64 / ITERS as f64;
    assert!(
        per_iter >= shard_bytes as f64 * 0.95,
        "each iteration must re-stream ~all shard bytes: {per_iter} vs {shard_bytes}"
    );
}

#[test]
fn dpu_traffic_matches_its_formula_shape() {
    let g = workload();
    let n = g.num_vertices() as u64;
    let shard_bytes = g.total_subshard_bytes().unwrap();
    let io = run(&g, Strategy::Dpu, 0);

    // Per iteration, reads ≥ m·Be (shards) + n·Ba (intervals) and writes
    // ≥ n·Ba; both bounded above by the hub-inflated formula.
    let ba = 8u64;
    let read_per_iter = io.read_bytes / ITERS as u64;
    let write_per_iter = io.written_bytes / ITERS as u64;
    assert!(read_per_iter >= shard_bytes + n * ba, "lower bound violated");
    assert!(write_per_iter >= n * ba, "interval writes missing");

    // Hub traffic bound: hubs store (id + accum) per *distinct* receiving
    // destination per sub-shard; at most one entry per edge.
    let m = g.num_edges();
    let hub_cap = m * (4 + 8) + (64 + 32) * 64; // records + per-file headers
    assert!(
        read_per_iter <= shard_bytes + n * ba + hub_cap + 4096,
        "read {} exceeds formula cap",
        read_per_iter
    );
    assert!(write_per_iter <= n * ba + hub_cap + 4096);
}

#[test]
fn mpu_traffic_sits_between_spu_and_dpu() {
    let g = workload();
    let n = g.num_vertices() as u64;
    let spu = run(&g, Strategy::Spu, 2 * n * 8 + 4 * n);
    let dpu = run(&g, Strategy::Dpu, 0);
    let mpu = run(&g, Strategy::Mpu, 4 * n + n * 8); // half resident
    assert!(
        mpu.total_bytes() <= dpu.total_bytes(),
        "MPU {} must not exceed DPU {}",
        mpu.total_bytes(),
        dpu.total_bytes()
    );
    assert!(
        mpu.total_bytes() >= spu.total_bytes(),
        "MPU {} must not beat streamed SPU {}",
        mpu.total_bytes(),
        spu.total_bytes()
    );
    // And monotone in the resident fraction.
    let mpu_quarter = run(&g, Strategy::Mpu, 4 * n + n * 4);
    assert!(mpu_quarter.total_bytes() >= mpu.total_bytes());
}

#[test]
fn dpu_is_independent_of_budget() {
    let g = workload();
    let a = run(&g, Strategy::Dpu, 0);
    let b = run(&g, Strategy::Dpu, 1 << 30);
    assert_eq!(a.read_bytes, b.read_bytes);
    assert_eq!(a.written_bytes, b.written_bytes);
}
