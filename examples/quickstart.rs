//! Quickstart: build a graph, preprocess it, and run PageRank.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use nxgraph::core::algo;
use nxgraph::core::engine::EngineConfig;
use nxgraph::core::prep::{preprocess, PrepConfig};
use nxgraph::storage::{Disk, MemDisk};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A graph is just (source, destination) index pairs — indices may be
    //    arbitrary (sparse) numbers; preprocessing compacts them.
    //    This is the example graph from Fig 1 of the NXgraph paper.
    let raw_edges: Vec<(u64, u64)> = nxgraph::core::fig1_example_edges()
        .into_iter()
        .map(|(s, d)| (s as u64, d as u64))
        .collect();

    // 2. Preprocess: degreeing (dense ids, degree tables) + sharding
    //    (P intervals, P² destination-sorted sub-shards) onto a disk.
    //    MemDisk keeps everything in memory with byte-exact I/O counting;
    //    use OsDisk for real files.
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let graph = preprocess(&raw_edges, &PrepConfig::new("quickstart", 4), disk)?;
    println!(
        "prepared '{}': {} vertices, {} edges, P = {} intervals",
        graph.manifest().name,
        graph.num_vertices(),
        graph.num_edges(),
        graph.num_intervals()
    );

    // 3. Run ten iterations of PageRank. The engine picks SPU/MPU/DPU from
    //    the memory budget automatically (unlimited here → SPU).
    let cfg = EngineConfig::default();
    let (ranks, stats) = algo::pagerank(&graph, 10, &cfg)?;
    println!(
        "pagerank: {} iterations in {:?} via {:?}, {} edges traversed, {} bytes read",
        stats.iterations,
        stats.elapsed,
        stats.strategy,
        stats.edges_traversed,
        stats.io.read_bytes
    );

    // 4. Inspect the results.
    let mut order: Vec<usize> = (0..ranks.len()).collect();
    order.sort_by(|&a, &b| ranks[b].total_cmp(&ranks[a]));
    println!("top vertices by rank:");
    for &v in order.iter().take(3) {
        println!("  vertex {v}: {:.4}", ranks[v]);
    }

    // 5. Other algorithms share the same prepared graph.
    let (depths, _) = algo::bfs(&graph, 0, &cfg)?;
    println!(
        "bfs from 0: max finite depth = {:?}",
        nxgraph::core::algo::bfs::max_depth(&depths)
    );
    let (labels, _) = algo::wcc(&graph, &cfg)?;
    println!(
        "wcc: {} component(s)",
        nxgraph::core::algo::wcc::component_count(&labels)
    );
    Ok(())
}
