//! Social-network analysis: influencer ranking and community structure on
//! a Twitter-like power-law graph — the workload class the paper's
//! introduction motivates ("both user data and relationship among them are
//! modeled by graphs").
//!
//! Generates an R-MAT graph with Twitter-like skew, then:
//! 1. ranks users with PageRank (top influencers),
//! 2. finds weakly connected components (community islands),
//! 3. measures how rank concentrates on hubs.
//!
//! ```sh
//! cargo run --release --example social_network [scale]
//! ```

use std::sync::Arc;

use nxgraph::core::algo;
use nxgraph::core::engine::EngineConfig;
use nxgraph::core::prep::{preprocess, PrepConfig};
use nxgraph::graphgen::rmat::{self, RmatConfig};
use nxgraph::storage::{Disk, MemDisk};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: u32 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(14);

    // Twitter-like skew: heavy-tailed follower counts.
    let gen_cfg = RmatConfig::graph500(scale, 16, 2024);
    println!(
        "generating R-MAT graph: scale {scale} (≤{} users, {} follows)…",
        gen_cfg.num_vertices(),
        gen_cfg.num_edges()
    );
    let raw: Vec<(u64, u64)> = rmat::generate(&gen_cfg)
        .into_iter()
        .map(|e| (e.src, e.dst))
        .collect();

    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let graph = preprocess(&raw, &PrepConfig::new("social", 16), disk)?;
    println!(
        "prepared: {} users with at least one follow, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    let cfg = EngineConfig::default();

    // 1. Influencers.
    let (ranks, stats) = algo::pagerank(&graph, 10, &cfg)?;
    println!(
        "pagerank: 10 iterations in {:?} ({:.1} MTEPS, strategy {:?})",
        stats.elapsed,
        stats.mteps(),
        stats.strategy
    );
    let mut order: Vec<usize> = (0..ranks.len()).collect();
    order.sort_by(|&a, &b| ranks[b].total_cmp(&ranks[a]));
    let total_rank: f64 = ranks.iter().sum();
    println!("top 5 influencers:");
    for &v in order.iter().take(5) {
        println!(
            "  user {v}: rank {:.6} ({:.2}% of total)",
            ranks[v],
            100.0 * ranks[v] / total_rank
        );
    }

    // 2. Rank concentration: share of total rank held by the top 1%.
    let total: f64 = ranks.iter().sum();
    let top1pct: f64 = order
        .iter()
        .take((ranks.len() / 100).max(1))
        .map(|&v| ranks[v])
        .sum();
    println!(
        "rank concentration: top 1% of users hold {:.1}% of total rank (power-law hubs)",
        100.0 * top1pct / total
    );

    // 3. Community islands.
    let (labels, wcc_stats) = algo::wcc(&graph, &cfg)?;
    println!(
        "wcc: {} components in {:?}; largest has {} users ({:.1}%)",
        nxgraph::core::algo::wcc::component_count(&labels),
        wcc_stats.elapsed,
        nxgraph::core::algo::wcc::largest_component(&labels),
        100.0 * nxgraph::core::algo::wcc::largest_component(&labels) as f64
            / labels.len() as f64
    );
    Ok(())
}
