//! Streaming graph updates — exercising the dynamic-graph extension (the
//! NXgraph paper's stated future work: "support dynamic change on graph
//! structure").
//!
//! Simulates a social network receiving follow events in batches: each
//! batch is committed incrementally (only touched sub-shards rewritten)
//! and PageRank is re-run on the evolving graph. Batches that introduce
//! brand-new users demonstrate the rebuild path.
//!
//! ```sh
//! cargo run --release --example streaming_updates
//! ```

use std::sync::Arc;

use nxgraph::core::algo;
use nxgraph::core::dynamic::DynamicGraph;
use nxgraph::core::engine::EngineConfig;
use nxgraph::core::prep::{preprocess, PrepConfig};
use nxgraph::graphgen::rmat::{self, RmatConfig};
use nxgraph::storage::{Disk, MemDisk};
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Day 0: an initial snapshot.
    let base = rmat::generate(&RmatConfig::graph500(12, 8, 1));
    let raw: Vec<(u64, u64)> = base.iter().map(|e| (e.src, e.dst)).collect();
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let graph = preprocess(&raw, &PrepConfig::new("stream", 12), disk)?;
    println!(
        "day 0: {} users, {} follows",
        graph.num_vertices(),
        graph.num_edges()
    );

    let mut dynamic = DynamicGraph::new(graph)?;
    let cfg = EngineConfig::default();
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    // Follows between *existing* users commit incrementally; sample from
    // the known index set.
    let known = dynamic.graph().load_reverse_mapping()?;
    let id_space = 1u64 << 12;

    for day in 1..=5 {
        // A batch of follow events; day 4 brings brand-new users.
        let mut batch = Vec::new();
        for _ in 0..200 {
            let s = known[rng.random_range(0..known.len())];
            let d = known[rng.random_range(0..known.len())];
            batch.push((s, d));
        }
        if day == 4 {
            batch.push((id_space + 1, 0));
            batch.push((id_space + 2, id_space + 1));
        }

        let stats = dynamic.add_edges(&batch)?;
        let (ranks, run) = algo::pagerank(dynamic.graph(), 5, &cfg)?;
        let top = ranks
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(v, r)| (v, *r))
            .unwrap();
        println!(
            "day {day}: +{} edges ({}), now {} users / {} edges; pagerank in {:?}, top vertex {} at {:.5}",
            stats.edges_added,
            if stats.rebuilt {
                "full rebuild — new users appeared".to_string()
            } else {
                format!("incremental, {} sub-shards rewritten", stats.cells_rewritten)
            },
            dynamic.graph().num_vertices(),
            dynamic.graph().num_edges(),
            run.elapsed,
            top.0,
            top.1,
        );
    }
    Ok(())
}
