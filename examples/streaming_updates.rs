//! Streaming graph updates — exercising the dynamic-graph extension (the
//! NXgraph paper's stated future work: "support dynamic change on graph
//! structure").
//!
//! Simulates a social network receiving follow events in batches, twice
//! over: once through the legacy whole-cell **rewrite** path and once
//! through the **delta log** (the default), counting disk write bytes for
//! both. Follows between existing users commit incrementally — the delta
//! log appends one small blob per touched sub-shard instead of rewriting
//! it, and periodic compaction folds the chains. Day 4 brings brand-new
//! users, whose dense ids don't exist yet: both modes must fall back to a
//! full re-preprocessing, which the commit stats report.
//!
//! ```sh
//! cargo run --release --example streaming_updates
//! ```

use std::sync::Arc;

use nxgraph::core::algo;
use nxgraph::core::dynamic::{CommitStats, DynamicConfig, DynamicGraph};
use nxgraph::core::engine::EngineConfig;
use nxgraph::core::prep::{preprocess, PrepConfig};
use nxgraph::graphgen::rmat::{self, RmatConfig};
use nxgraph::storage::{Disk, MemDisk};
use rand::{Rng, SeedableRng};

/// Five days of follow events; day 4 includes two brand-new users.
fn event_stream(known: &[u64], id_space: u64) -> Vec<Vec<(u64, u64)>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    (1..=5)
        .map(|day| {
            let mut batch: Vec<(u64, u64)> = (0..200)
                .map(|_| {
                    (
                        known[rng.random_range(0..known.len())],
                        known[rng.random_range(0..known.len())],
                    )
                })
                .collect();
            if day == 4 {
                batch.push((id_space + 1, 0));
                batch.push((id_space + 2, id_space + 1));
            }
            batch
        })
        .collect()
}

fn describe(stats: &CommitStats) -> String {
    if stats.rebuilt {
        "full rebuild — new users appeared".to_string()
    } else if stats.cells_rewritten > 0 {
        format!("incremental, {} sub-shards rewritten", stats.cells_rewritten)
    } else {
        format!(
            "incremental, {} deltas appended, {} chains folded",
            stats.deltas_appended, stats.cells_compacted
        )
    }
}

/// Replay the stream under one commit mode; returns total write bytes and
/// the final PageRank bits.
fn replay(
    raw: &[(u64, u64)],
    stream: &[Vec<(u64, u64)>],
    config: DynamicConfig,
    label: &str,
) -> Result<(u64, Vec<u64>), Box<dyn std::error::Error>> {
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let graph = preprocess(raw, &PrepConfig::new("stream", 12), Arc::clone(&disk))?;
    println!(
        "[{label}] day 0: {} users, {} follows",
        graph.num_vertices(),
        graph.num_edges()
    );
    let mut dynamic = DynamicGraph::with_config(graph, config)?;
    let cfg = EngineConfig::default();
    let write_base = disk.counters().written_bytes();
    for (day, batch) in stream.iter().enumerate() {
        let before = disk.counters().written_bytes();
        let stats = dynamic.add_edges(batch)?;
        let wrote = disk.counters().written_bytes() - before;
        let (ranks, run) = algo::pagerank(dynamic.graph(), 5, &cfg)?;
        let top = ranks
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(v, r)| (v, *r))
            .unwrap();
        println!(
            "[{label}] day {}: +{} edges ({}), wrote {wrote} B; now {} users / {} edges; pagerank in {:?}, top vertex {} at {:.5}",
            day + 1,
            stats.edges_added,
            describe(&stats),
            dynamic.graph().num_vertices(),
            dynamic.graph().num_edges(),
            run.elapsed,
            top.0,
            top.1,
        );
    }
    let written = disk.counters().written_bytes() - write_base;
    let (ranks, _) = algo::pagerank(dynamic.graph(), 5, &cfg)?;
    Ok((written, ranks.into_iter().map(f64::to_bits).collect()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Day 0: an initial snapshot.
    let base = rmat::generate(&RmatConfig::graph500(12, 8, 1));
    let raw: Vec<(u64, u64)> = base.iter().map(|e| (e.src, e.dst)).collect();
    let mut known: Vec<u64> = raw.iter().flat_map(|&(s, d)| [s, d]).collect();
    known.sort_unstable();
    known.dedup();
    let stream = event_stream(&known, 1u64 << 12);

    let (rewrite_bytes, rewrite_ranks) =
        replay(&raw, &stream, DynamicConfig::rewrite(), "rewrite")?;
    let (delta_bytes, delta_ranks) =
        replay(&raw, &stream, DynamicConfig::default(), "delta-log")?;

    println!(
        "\nstream write traffic: rewrite {rewrite_bytes} B, delta log {delta_bytes} B ({:.1}x less)",
        rewrite_bytes as f64 / delta_bytes.max(1) as f64
    );
    // The log must actually be cheaper, and both paths must agree bit for
    // bit — these double as runnable assertions when CI executes examples.
    assert!(
        delta_bytes < rewrite_bytes,
        "delta log wrote {delta_bytes} B, rewrite {rewrite_bytes} B"
    );
    assert_eq!(
        delta_ranks, rewrite_ranks,
        "commit modes must produce identical PageRank"
    );
    Ok(())
}
