//! Web-graph analysis on a Yahoo-web-like crawl: sparse index space,
//! isolated pages, reachability and strongly connected link structure.
//!
//! Demonstrates the pieces the paper's Yahoo-web experiments exercise:
//! degreeing compacts a sparse index space ("the vertex number here is
//! less than the number of vertex indices"), BFS measures crawl
//! reachability, and SCC finds the web's link cores — plus a memory-budget
//! sweep showing the engine degrading gracefully SPU → MPU → DPU.
//!
//! ```sh
//! cargo run --release --example web_crawl [scale]
//! ```

use std::sync::Arc;

use nxgraph::core::algo;
use nxgraph::core::engine::{EngineConfig, Strategy};
use nxgraph::core::prep::{preprocess, PrepConfig};
use nxgraph::graphgen::datasets;
use nxgraph::storage::{Disk, MemDisk};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shift: i32 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(-5);

    let crawl = datasets::yahoo_like(shift, 7);
    let max_index = crawl.edges.iter().map(|e| e.src.max(e.dst)).max().unwrap_or(0);
    println!(
        "crawl: {} hyperlinks over an index space up to {max_index}",
        crawl.edges.len()
    );

    let raw: Vec<(u64, u64)> = crawl.edges.iter().map(|e| (e.src, e.dst)).collect();
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let graph = preprocess(&raw, &PrepConfig::new("web", 24), disk)?;
    println!(
        "degreeing compacted {} sparse indices down to {} connected pages",
        max_index + 1,
        graph.num_vertices()
    );

    // Reachability of the crawl frontier from page 0.
    let cfg = EngineConfig::default();
    let (depths, stats) = algo::bfs(&graph, 0, &cfg)?;
    let reached = depths.iter().filter(|&&d| d != u32::MAX).count();
    println!(
        "bfs: {} of {} pages reachable from page 0 (max depth {:?}) in {:?}",
        reached,
        depths.len(),
        nxgraph::core::algo::bfs::max_depth(&depths),
        stats.elapsed
    );

    // Link cores.
    let scc = algo::scc(&graph, &cfg)?;
    let mut sizes = std::collections::HashMap::new();
    for &l in &scc.labels {
        *sizes.entry(l).or_insert(0usize) += 1;
    }
    let largest = sizes.values().copied().max().unwrap_or(0);
    println!(
        "scc: {} components in {} FW-BW rounds; largest link core has {} pages",
        sizes.len(),
        scc.rounds,
        largest
    );

    // Memory-budget sweep: the same PageRank under each strategy.
    println!("\npagerank under shrinking memory budgets:");
    let n = graph.num_vertices() as u64;
    for (label, budget, want) in [
        ("plentiful (SPU)", u64::MAX, Strategy::Spu),
        ("half intervals (MPU)", 4 * n + n * 8, Strategy::Mpu),
        ("starved (DPU)", 0, Strategy::Dpu),
    ] {
        let cfg = EngineConfig::default().with_budget(budget);
        let (ranks, stats) = algo::pagerank(&graph, 5, &cfg)?;
        assert_eq!(stats.strategy, want, "selector picked the expected engine");
        println!(
            "  {label:22} -> strategy {:?}, {:?}, {} bytes moved, top rank {:.6}",
            stats.strategy,
            stats.elapsed,
            stats.io.total_bytes(),
            ranks.iter().cloned().fold(f64::MIN, f64::max)
        );
    }
    Ok(())
}
