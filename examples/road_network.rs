//! Road-network style analysis on a triangulated mesh — the constant-degree
//! planar workload of the paper's scalability experiment (delaunay_n*).
//!
//! Runs BFS "routing waves" from a corner, compares the engine's measured
//! throughput across mesh sizes (the Fig 11 MTEPS story), and checks the
//! structural facts a planar mesh guarantees (single connected component,
//! one strongly connected core since every road is bidirectional).
//!
//! ```sh
//! cargo run --release --example road_network [scale]
//! ```

use std::sync::Arc;

use nxgraph::core::algo;
use nxgraph::core::engine::EngineConfig;
use nxgraph::core::prep::{preprocess, PrepConfig};
use nxgraph::graphgen::mesh::{self, MeshConfig};
use nxgraph::storage::{Disk, MemDisk};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base: u32 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(12);

    println!("mesh scalability sweep (the Fig 11 workload):");
    for scale in base..base + 3 {
        let cfg = MeshConfig::with_scale(scale);
        let edges: Vec<(u64, u64)> = mesh::generate(&cfg)
            .into_iter()
            .map(|e| (e.src, e.dst))
            .collect();
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        let graph = preprocess(&edges, &PrepConfig::new(format!("mesh{scale}"), 12), disk)?;

        let engine_cfg = EngineConfig::default();
        let (_, pr) = algo::pagerank(&graph, 10, &engine_cfg)?;
        let (depths, bfs_stats) = algo::bfs(&graph, 0, &engine_cfg)?;
        let diameter = nxgraph::core::algo::bfs::max_depth(&depths).unwrap_or(0);
        println!(
            "  2^{scale}: {:>8} intersections, {:>9} road segments | pagerank {:>7.1} MTEPS | bfs wave depth {diameter} in {:?}",
            graph.num_vertices(),
            graph.num_edges(),
            pr.mteps(),
            bfs_stats.elapsed,
        );
    }

    // Structural checks on the largest mesh.
    let cfg = MeshConfig::with_scale(base + 2);
    let edges: Vec<(u64, u64)> = mesh::generate(&cfg)
        .into_iter()
        .map(|e| (e.src, e.dst))
        .collect();
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let graph = preprocess(&edges, &PrepConfig::new("mesh-check", 12), disk)?;
    let engine_cfg = EngineConfig::default();

    let (labels, _) = algo::wcc(&graph, &engine_cfg)?;
    let components = nxgraph::core::algo::wcc::component_count(&labels);
    println!("\nconnectivity: {components} weak component(s) — a road network should have 1");
    assert_eq!(components, 1);

    // Every road is two-way, so the whole mesh is one strongly connected
    // component.
    let scc = algo::scc(&graph, &engine_cfg)?;
    let distinct: std::collections::HashSet<_> = scc.labels.iter().collect();
    println!(
        "strong connectivity: {} SCC(s) in {} round(s) — bidirectional roads give exactly 1",
        distinct.len(),
        scc.rounds
    );
    assert_eq!(distinct.len(), 1);
    Ok(())
}
