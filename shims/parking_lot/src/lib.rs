//! Minimal stand-in for `parking_lot` built on `std::sync`.
//!
//! Exposes the non-poisoning `Mutex`/`Condvar` API the workspace uses.
//! Poisoned std locks are recovered transparently (`into_inner`), matching
//! parking_lot's poison-free semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            // The Option lets `Condvar::wait` move the std guard out and
            // back without unsafe code; it is always `Some` outside `wait`.
            inner: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            ),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Wait with a timeout; like parking_lot's, the result says whether
    /// the wait timed out (spurious wakeups still return "not timed out").
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, res) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

/// Whether a [`Condvar::wait_for`] returned because its timeout elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[cfg(test)]
mod tests {
    use super::{Condvar, Mutex};
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn wait_for_times_out_when_never_signalled() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, std::time::Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        t.join().unwrap();
    }
}
