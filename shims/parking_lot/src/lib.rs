//! Minimal stand-in for `parking_lot` built on `std::sync`.
//!
//! Exposes the non-poisoning `Mutex`/`Condvar` API the workspace uses.
//! Poisoned std locks are recovered transparently (`into_inner`), matching
//! parking_lot's poison-free semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            // The Option lets `Condvar::wait` move the std guard out and
            // back without unsafe code; it is always `Some` outside `wait`.
            inner: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            ),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::{Condvar, Mutex};
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        t.join().unwrap();
    }
}
