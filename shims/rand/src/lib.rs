//! Minimal deterministic stand-in for the `rand` crate (0.9 API surface).
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64` and the
//! `Rng::{random, random_range, random_bool}` methods used by this
//! workspace. The generator is SplitMix64 — not ChaCha12 like the real
//! `StdRng` — so streams differ from upstream, but every in-tree use only
//! relies on seeded determinism.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from raw random words.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u128 - self.start as u128) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as u128 - lo as u128 + 1) as u64;
                if width == 0 {
                    // Full-domain u64 range.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % width) as $t
            }
        }
    )*};
}
// Unsigned only: the width arithmetic above is wrong for signed domains,
// and no in-tree caller samples a signed range.
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i: u8 = rng.random_range(1u8..=255);
            assert!(i >= 1);
            let unit: f64 = rng.random();
            assert!((0.0..1.0).contains(&unit));
        }
    }
}
