//! Micro stand-in for the `criterion` crate: compiles the same bench
//! sources and prints a median wall-clock time per benchmark. No warmup
//! schedule, outlier analysis or HTML reports — just enough to compare
//! orders of magnitude from `cargo bench` without a registry.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Samples per benchmark unless overridden with
/// [`BenchmarkGroup::sample_size`].
const DEFAULT_SAMPLES: usize = 10;

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: DEFAULT_SAMPLES,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name.as_ref(), DEFAULT_SAMPLES, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            &format!("{}/{}", self.name, name.as_ref()),
            self.sample_size,
            f,
        );
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
    };
    // One untimed pass to touch caches and lazy state.
    f(&mut bencher);
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        times.push(bencher.elapsed);
    }
    times.sort();
    println!("{label:<48} median {:>12.3?}  ({samples} samples)", times[times.len() / 2]);
}

pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
    }
}

/// Declares a group runner the same way criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
