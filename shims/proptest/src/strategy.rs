//! The `Strategy` trait and the combinators/primitive strategies the
//! workspace uses.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for producing values of `Self::Value` from a random stream.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F, O>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            f,
            _out: PhantomData,
        }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F, S2>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap {
            source: self,
            f,
            _next: PhantomData,
        }
    }
}

/// Strategies are freely shareable recipes; a reference generates the same
/// way the owned value does.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

pub struct Map<S, F, O> {
    source: S,
    f: F,
    _out: PhantomData<fn() -> O>,
}

impl<S, F, O> Strategy for Map<S, F, O>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

pub struct FlatMap<S, F, S2> {
    source: S,
    f: F,
    _next: PhantomData<fn() -> S2>,
}

impl<S, F, S2> Strategy for FlatMap<S, F, S2>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(width) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = hi as u128 - lo as u128 + 1;
                if width > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(width as u64) as $t
            }
        }
    )*};
}
impl_range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}

/// String literals act as regex-like generators; see [`crate::string`] for
/// the supported pattern subset.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}
