//! `any::<T>()` — whole-domain strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T>(PhantomData<fn() -> T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only: uniform sign/exponent surprises (NaN, inf)
        // are more trouble than help for the suites using this shim.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated text debuggable.
        (0x20 + rng.below(0x5f) as u8) as char
    }
}
