//! Collection strategies: `vec` and `btree_map`.

use std::collections::BTreeMap;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Accepted size specifications: a fixed length, `lo..hi` or `lo..=hi`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive.
    max: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.min < self.max, "empty size range");
        self.min + rng.below((self.max - self.min) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        // Duplicate keys collapse, so the result may be smaller than the
        // drawn target — same contract as upstream proptest.
        let len = self.size.pick(rng);
        (0..len)
            .map(|_| (self.key.generate(rng), self.value.generate(rng)))
            .collect()
    }
}
