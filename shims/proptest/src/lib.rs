//! Minimal deterministic stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace uses: the `proptest!` macro (with an
//! optional `#![proptest_config(..)]` header), `prop_assert!`/
//! `prop_assert_eq!`/`prop_assert_ne!`, the [`strategy::Strategy`] trait
//! with `prop_map`/`prop_flat_map`, `any::<T>()`, numeric-range, tuple and
//! string-pattern strategies, and `collection::{vec, btree_map}`.
//!
//! Unlike upstream proptest there is **no shrinking** and the case stream
//! is fully deterministic: each test function derives its RNG seed from a
//! hash of its own name, so failures reproduce on every run. The failure
//! message reports the case index. The number of cases defaults to 32 and
//! can be set per-suite with `ProptestConfig::with_cases(n)` or globally
//! with the `PROPTEST_CASES` environment variable.

pub mod arbitrary;
pub mod collection;
pub mod config;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use arbitrary::any;

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// FNV-1a hash of a test name, used to derive a per-test deterministic seed.
pub fn seed_of(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Defines property tests. Each `#[test] fn name(arg in strategy, ..)` item
/// becomes a plain `#[test]` that draws `cases` deterministic inputs and
/// runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::config::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::config::ProptestConfig = $cfg;
                let seed = $crate::seed_of(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    let mut rng = $crate::test_runner::TestRng::deterministic(seed, case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let run = ::std::panic::AssertUnwindSafe(move || { $body });
                    if let Err(panic) = ::std::panic::catch_unwind(run) {
                        eprintln!(
                            "proptest: {} failed at case {}/{} (seed {:#x})",
                            stringify!($name), case, cfg.cases, seed,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// `assert!` under a name the real proptest exports.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
