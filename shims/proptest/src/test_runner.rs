//! The deterministic random source behind every strategy.

/// SplitMix64 stream, seeded from (test-name hash, case index).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A distinct, reproducible stream for one test case.
    pub fn deterministic(seed: u64, case: u32) -> Self {
        // Decorrelate neighbouring cases with one mixing round.
        let mut rng = TestRng {
            state: seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        rng.next_u64();
        rng
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
