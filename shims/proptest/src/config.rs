//! Runner configuration.

/// Mirrors the `cases` knob of the real `ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32);
        ProptestConfig { cases }
    }
}
