//! String generation from the regex subset used as proptest strategies:
//! sequences of literal characters and `[...]` character classes (with
//! `a-z` ranges and a literal trailing `-`), each optionally followed by a
//! `{n}` or `{m,n}` repetition.

use crate::test_runner::TestRng;

enum Piece {
    Literal(char),
    Class(Vec<char>),
}

fn parse(pattern: &str) -> Vec<(Piece, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut k = 0;
    while k < chars.len() {
        let piece = match chars[k] {
            '[' => {
                let close = chars[k..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| k + p)
                    .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"));
                let mut set = Vec::new();
                let mut j = k + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad class range in {pattern:?}");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty class in {pattern:?}");
                k = close + 1;
                Piece::Class(set)
            }
            '\\' => {
                k += 1;
                assert!(k < chars.len(), "dangling escape in {pattern:?}");
                let c = chars[k];
                k += 1;
                Piece::Literal(c)
            }
            c => {
                assert!(
                    !"(){}|*+?.^$".contains(c),
                    "unsupported regex syntax {c:?} in pattern {pattern:?}"
                );
                k += 1;
                Piece::Literal(c)
            }
        };
        // Optional {n} / {m,n} repetition.
        let (min, max) = if k < chars.len() && chars[k] == '{' {
            let close = chars[k..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| k + p)
                .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"));
            let spec: String = chars[k + 1..close].iter().collect();
            k = close + 1;
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad repeat min"),
                    n.trim().parse().expect("bad repeat max"),
                ),
                None => {
                    let n: usize = spec.trim().parse().expect("bad repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push((piece, min, max));
    }
    pieces
}

pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for (piece, min, max) in parse(pattern) {
        let reps = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..reps {
            match &piece {
                Piece::Literal(c) => out.push(*c),
                Piece::Class(set) => out.push(set[rng.below(set.len() as u64) as usize]),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::generate;
    use crate::test_runner::TestRng;

    #[test]
    fn class_with_repeat() {
        let mut rng = TestRng::deterministic(1, 0);
        for _ in 0..200 {
            let s = generate("[a-zA-Z0-9_-]{1,20}", &mut rng);
            assert!((1..=20).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'));
        }
    }

    #[test]
    fn literals_pass_through() {
        let mut rng = TestRng::deterministic(2, 0);
        assert_eq!(generate("abc", &mut rng), "abc");
    }
}
